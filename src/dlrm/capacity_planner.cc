#include "dlrm/capacity_planner.h"

#include <algorithm>
#include <sstream>

#include "tensor/check.h"

namespace ttrec {

int64_t TtTableBytes(int64_t rows, int64_t emb_dim, int num_cores,
                     int64_t rank) {
  return MakeTtShape(rows, emb_dim, num_cores, rank).TotalParams() *
         static_cast<int64_t>(sizeof(float));
}

std::string CapacityPlan::ToString() const {
  std::ostringstream os;
  os << "plan: " << total_bytes << " / dense " << dense_bytes << " bytes ("
     << CompressionRatio() << "x), fits=" << (fits ? "yes" : "no") << "\n";
  for (const TablePlan& t : tables) {
    os << "  table " << t.table << " (" << t.rows << " rows): ";
    if (t.compress) {
      os << "tt rank " << t.rank;
    } else {
      os << "dense";
    }
    os << ", " << t.bytes << " bytes\n";
  }
  return os.str();
}

CapacityPlan PlanCapacity(const DatasetSpec& spec, int64_t emb_dim,
                          int64_t budget_bytes,
                          const PlannerOptions& options) {
  TTREC_CHECK_CONFIG(budget_bytes > 0, "budget must be positive");
  TTREC_CHECK_CONFIG(!options.allowed_ranks.empty(),
                     "need at least one allowed rank");
  TTREC_CHECK_CONFIG(
      std::is_sorted(options.allowed_ranks.begin(),
                     options.allowed_ranks.end()),
      "allowed_ranks must be ascending");
  TTREC_CHECK_CONFIG(options.num_cores >= 2, "need >= 2 TT cores");

  CapacityPlan plan;
  plan.tables.resize(static_cast<size_t>(spec.num_tables()));
  for (int t = 0; t < spec.num_tables(); ++t) {
    TablePlan& tp = plan.tables[static_cast<size_t>(t)];
    tp.table = t;
    tp.rows = spec.table_rows[static_cast<size_t>(t)];
    tp.compress = false;
    tp.bytes = tp.rows * emb_dim * static_cast<int64_t>(sizeof(float));
    plan.dense_bytes += tp.bytes;
  }
  plan.total_bytes = plan.dense_bytes;

  // Tables by descending size — the compression order (Fig 5 logic).
  const std::vector<int> by_size = spec.LargestTables(spec.num_tables());

  // Pass 1: compress the largest tables until the budget is met, each at
  // the highest allowed rank that actually shrinks it (at small row counts
  // high-rank TT can exceed the dense table). Tables TT cannot shrink at
  // any allowed rank stay dense.
  for (int t : by_size) {
    if (plan.total_bytes <= budget_bytes) break;
    TablePlan& tp = plan.tables[static_cast<size_t>(t)];
    for (auto it = options.allowed_ranks.rbegin();
         it != options.allowed_ranks.rend(); ++it) {
      const int64_t tt_bytes =
          TtTableBytes(tp.rows, emb_dim, options.num_cores, *it);
      if (tt_bytes < tp.bytes) {
        plan.total_bytes += tt_bytes - tp.bytes;
        tp.compress = true;
        tp.rank = *it;
        tp.bytes = tt_bytes;
        break;
      }
    }
  }

  // Pass 2: still over budget — lower ranks, always shrinking the table
  // whose current TT form is biggest (greedy largest-gain step).
  while (plan.total_bytes > budget_bytes) {
    int best = -1;
    int64_t best_bytes = -1;
    for (int t = 0; t < spec.num_tables(); ++t) {
      const TablePlan& tp = plan.tables[static_cast<size_t>(t)];
      if (!tp.compress) continue;
      if (tp.rank == options.allowed_ranks.front()) continue;
      if (tp.bytes > best_bytes) {
        best_bytes = tp.bytes;
        best = t;
      }
    }
    if (best < 0) break;  // nothing left to shrink
    TablePlan& tp = plan.tables[static_cast<size_t>(best)];
    const auto it = std::find(options.allowed_ranks.begin(),
                              options.allowed_ranks.end(), tp.rank);
    TTREC_CHECK_INTERNAL(it != options.allowed_ranks.begin() &&
                             it != options.allowed_ranks.end(),
                         "rank bookkeeping broken");
    const int64_t next_rank = *(it - 1);
    const int64_t new_bytes =
        TtTableBytes(tp.rows, emb_dim, options.num_cores, next_rank);
    plan.total_bytes += new_bytes - tp.bytes;
    tp.rank = next_rank;
    tp.bytes = new_bytes;
  }

  plan.fits = plan.total_bytes <= budget_bytes;
  return plan;
}

}  // namespace ttrec
