#include "dlrm/capacity_planner.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "cache/cache_manager.h"
#include "cache/lfu_cache.h"
#include "tensor/check.h"

namespace ttrec {

int64_t TtTableBytes(int64_t rows, int64_t emb_dim, int num_cores,
                     int64_t rank) {
  return MakeTtShape(rows, emb_dim, num_cores, rank).TotalParams() *
         static_cast<int64_t>(sizeof(float));
}

std::string CapacityPlan::ToString() const {
  std::ostringstream os;
  os << "plan: " << total_bytes << " / dense " << dense_bytes << " bytes ("
     << CompressionRatio() << "x), fits=" << (fits ? "yes" : "no") << "\n";
  for (const TablePlan& t : tables) {
    os << "  table " << t.table << " (" << t.rows << " rows): ";
    if (t.compress) {
      os << "tt rank " << t.rank;
    } else {
      os << "dense";
    }
    os << ", " << t.bytes << " bytes\n";
  }
  return os.str();
}

CapacityPlan PlanCapacity(const DatasetSpec& spec, int64_t emb_dim,
                          int64_t budget_bytes,
                          const PlannerOptions& options) {
  TTREC_CHECK_CONFIG(budget_bytes > 0, "budget must be positive");
  TTREC_CHECK_CONFIG(!options.allowed_ranks.empty(),
                     "need at least one allowed rank");
  TTREC_CHECK_CONFIG(
      std::is_sorted(options.allowed_ranks.begin(),
                     options.allowed_ranks.end()),
      "allowed_ranks must be ascending");
  TTREC_CHECK_CONFIG(options.num_cores >= 2, "need >= 2 TT cores");

  CapacityPlan plan;
  plan.tables.resize(static_cast<size_t>(spec.num_tables()));
  for (int t = 0; t < spec.num_tables(); ++t) {
    TablePlan& tp = plan.tables[static_cast<size_t>(t)];
    tp.table = t;
    tp.rows = spec.table_rows[static_cast<size_t>(t)];
    tp.compress = false;
    tp.bytes = tp.rows * emb_dim * static_cast<int64_t>(sizeof(float));
    plan.dense_bytes += tp.bytes;
  }
  plan.total_bytes = plan.dense_bytes;

  // Tables by descending size — the compression order (Fig 5 logic).
  const std::vector<int> by_size = spec.LargestTables(spec.num_tables());

  // Pass 1: compress the largest tables until the budget is met, each at
  // the highest allowed rank that actually shrinks it (at small row counts
  // high-rank TT can exceed the dense table). Tables TT cannot shrink at
  // any allowed rank stay dense.
  for (int t : by_size) {
    if (plan.total_bytes <= budget_bytes) break;
    TablePlan& tp = plan.tables[static_cast<size_t>(t)];
    for (auto it = options.allowed_ranks.rbegin();
         it != options.allowed_ranks.rend(); ++it) {
      const int64_t tt_bytes =
          TtTableBytes(tp.rows, emb_dim, options.num_cores, *it);
      if (tt_bytes < tp.bytes) {
        plan.total_bytes += tt_bytes - tp.bytes;
        tp.compress = true;
        tp.rank = *it;
        tp.bytes = tt_bytes;
        break;
      }
    }
  }

  // Pass 2: still over budget — lower ranks, always shrinking the table
  // whose current TT form is biggest (greedy largest-gain step).
  while (plan.total_bytes > budget_bytes) {
    int best = -1;
    int64_t best_bytes = -1;
    for (int t = 0; t < spec.num_tables(); ++t) {
      const TablePlan& tp = plan.tables[static_cast<size_t>(t)];
      if (!tp.compress) continue;
      if (tp.rank == options.allowed_ranks.front()) continue;
      if (tp.bytes > best_bytes) {
        best_bytes = tp.bytes;
        best = t;
      }
    }
    if (best < 0) break;  // nothing left to shrink
    TablePlan& tp = plan.tables[static_cast<size_t>(best)];
    const auto it = std::find(options.allowed_ranks.begin(),
                              options.allowed_ranks.end(), tp.rank);
    TTREC_CHECK_INTERNAL(it != options.allowed_ranks.begin() &&
                             it != options.allowed_ranks.end(),
                         "rank bookkeeping broken");
    const int64_t next_rank = *(it - 1);
    const int64_t new_bytes =
        TtTableBytes(tp.rows, emb_dim, options.num_cores, next_rank);
    plan.total_bytes += new_bytes - tp.bytes;
    tp.rank = next_rank;
    tp.bytes = new_bytes;
  }

  plan.fits = plan.total_bytes <= budget_bytes;
  return plan;
}

std::string CacheAwarePlan::ToString() const {
  std::ostringstream os;
  os << "cache-aware plan: " << cache_budget_bytes << " cache bytes ("
     << cache_fraction << " of budget), predicted hit rate "
     << predicted_hit_rate << "\n";
  os << tt.ToString();
  for (size_t t = 0; t < cache_rows.size(); ++t) {
    if (cache_rows[t] > 0) {
      os << "  table " << t << ": cache " << cache_rows[t] << " rows\n";
    }
  }
  return os.str();
}

CacheAwarePlan PlanCapacityWithCache(const DatasetSpec& spec, int64_t emb_dim,
                                     int64_t budget_bytes,
                                     std::span<const MissRatioCurve> mrcs,
                                     const CachePlannerOptions& options) {
  TTREC_CHECK_CONFIG(
      static_cast<int>(mrcs.size()) == spec.num_tables(),
      "PlanCapacityWithCache: need one MRC per table (got ", mrcs.size(),
      " for ", spec.num_tables(), " tables)");
  TTREC_CHECK_CONFIG(!options.cache_fractions.empty(),
                     "PlanCapacityWithCache: need candidate fractions");
  TTREC_CHECK_CONFIG(
      std::find(options.cache_fractions.begin(),
                options.cache_fractions.end(),
                0.0) != options.cache_fractions.end(),
      "PlanCapacityWithCache: cache_fractions must include 0 (pure-TT "
      "fallback)");

  const int64_t bytes_per_row = LfuRowCache::BytesPerRow(emb_dim);
  CacheAwarePlan best;
  bool have_best = false;

  for (const double frac : options.cache_fractions) {
    TTREC_CHECK_CONFIG(frac >= 0.0 && frac < 1.0,
                       "PlanCapacityWithCache: cache fraction ", frac,
                       " must be in [0, 1)");
    int64_t cache_budget =
        static_cast<int64_t>(std::floor(static_cast<double>(budget_bytes) *
                                        frac));
    const int64_t tt_budget = budget_bytes - cache_budget;
    if (tt_budget <= 0) continue;
    CapacityPlan tt = PlanCapacity(spec, emb_dim, tt_budget, options.tt);
    // A TT plan that came in under its slice frees the slack for caching.
    // Fraction 0 stays genuinely cache-free — it is the pure-TT fallback
    // the caller compares against, not "cache whatever is left over".
    if (tt.fits && frac > 0.0) {
      cache_budget = budget_bytes - tt.total_bytes;
    } else if (frac == 0.0) {
      cache_budget = 0;
    }

    // Caches apply only to compressed tables; dense tables already hold
    // every row uncompressed.
    std::vector<size_t> compressed;
    std::vector<CacheApportionInput> inputs;
    for (size_t t = 0; t < tt.tables.size(); ++t) {
      if (!tt.tables[t].compress) continue;
      CacheApportionInput in;
      in.mrc = mrcs[t];
      in.max_rows = tt.tables[t].rows;
      in.bytes_per_row = bytes_per_row;
      compressed.push_back(t);
      inputs.push_back(std::move(in));
    }

    CacheAwarePlan candidate;
    candidate.tt = std::move(tt);
    candidate.cache_fraction = frac;
    candidate.cache_rows.assign(static_cast<size_t>(spec.num_tables()), 0);
    if (!compressed.empty() &&
        cache_budget >= static_cast<int64_t>(compressed.size()) *
                            options.min_cache_rows * bytes_per_row) {
      const std::vector<int64_t> rows = ApportionCacheRows(
          inputs, cache_budget, options.min_cache_rows, /*chunk_rows=*/0);
      double total_traffic = 0.0;
      for (const CacheApportionInput& in : inputs) {
        total_traffic += static_cast<double>(in.mrc.total_accesses());
      }
      int64_t used = 0;
      double weighted_hit = 0.0;
      for (size_t i = 0; i < compressed.size(); ++i) {
        candidate.cache_rows[compressed[i]] = rows[i];
        used += rows[i] * bytes_per_row;
        if (total_traffic > 0.0) {
          weighted_hit +=
              static_cast<double>(inputs[i].mrc.total_accesses()) /
              total_traffic * inputs[i].mrc.HitRateAt(rows[i]);
        }
      }
      candidate.cache_budget_bytes = used;
      candidate.predicted_hit_rate = weighted_hit;
    }

    // Prefer: fitting plans, then higher predicted hit rate, then the
    // smaller cache slice (leave headroom when the hit rate ties).
    const auto better = [&]() {
      if (!have_best) return true;
      if (candidate.tt.fits != best.tt.fits) return candidate.tt.fits;
      if (candidate.predicted_hit_rate != best.predicted_hit_rate) {
        return candidate.predicted_hit_rate > best.predicted_hit_rate;
      }
      return candidate.cache_fraction < best.cache_fraction;
    };
    if (better()) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  TTREC_CHECK_INTERNAL(have_best,
                       "PlanCapacityWithCache: no candidate evaluated");
  return best;
}

}  // namespace ttrec
