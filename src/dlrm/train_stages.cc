#include "dlrm/train_stages.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "tensor/serialize.h"

namespace ttrec {

namespace {
using Clock = std::chrono::steady_clock;
int64_t Micros(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
}
}  // namespace

LookaheadStage::LookaheadStage(BatchSource& source, LookaheadOptions options)
    : source_(source), options_(std::move(options)) {
  TTREC_CHECK_CONFIG(options_.depth >= 0,
                     "LookaheadStage: depth must be >= 0");
  TTREC_CHECK_CONFIG(options_.batch_size >= 1,
                     "LookaheadStage: batch_size must be >= 1");
  TTREC_CHECK_CONFIG(options_.start_index >= 0,
                     "LookaheadStage: start_index must be >= 0");
  TTREC_CHECK_CONFIG(options_.total_batches >= 0,
                     "LookaheadStage: total_batches must be >= 0");
  TTREC_CHECK_CONFIG(
      options_.plan_tables.empty() ||
          static_cast<int>(options_.plan_tables.size()) ==
              source_.num_tables(),
      "LookaheadStage: plan_tables must be empty or have one entry per "
      "source table (", options_.plan_tables.size(), " vs ",
      source_.num_tables(), ")");
  end_index_ = options_.start_index + options_.total_batches;
  next_produce_ = options_.start_index;
  next_consume_ = options_.start_index;
  StartProducer();
}

LookaheadStage::~LookaheadStage() { StopProducer(); }

bool LookaheadStage::Exhausted() const { return next_consume_ >= end_index_; }

StagedBatch LookaheadStage::Produce(int64_t index) {
  StagedBatch sb;
  sb.index = index;
  sb.batch = source_.NextBatch(options_.batch_size);
  if (options_.depth >= 1 && !options_.plan_tables.empty()) {
    sb.plan.resize(sb.batch.sparse.size());
    for (size_t t = 0; t < sb.batch.sparse.size(); ++t) {
      if (t >= options_.plan_tables.size() || !options_.plan_tables[t]) {
        continue;
      }
      std::vector<int64_t>& plan = sb.plan[t];
      plan = sb.batch.sparse[t].indices;
      std::sort(plan.begin(), plan.end());
      plan.erase(std::unique(plan.begin(), plan.end()), plan.end());
    }
  }
  if (options_.capture_state) {
    std::ostringstream ss;
    BinaryWriter w(ss);
    source_.SaveState(w);
    sb.source_state = ss.str();
  }
  return sb;
}

void LookaheadStage::StartProducer() {
  if (!options_.threaded || options_.depth < 1 ||
      next_produce_ >= end_index_) {
    return;
  }
  stop_requested_ = false;
  producer_done_ = false;
  producer_error_ = nullptr;
  producer_ = std::thread([this] { ProducerLoop(); });
}

void LookaheadStage::ProducerLoop() {
  try {
    while (true) {
      {
        // Bounded queue: never run more than `depth` staged batches ahead
        // of what the consumer has taken.
        std::unique_lock<std::mutex> lock(mu_);
        const auto w0 = Clock::now();
        queue_not_full_.wait(lock, [this] {
          return stop_requested_ ||
                 static_cast<int64_t>(queue_.size()) < options_.depth;
        });
        stats_.producer_wait_us += Micros(w0, Clock::now());
        if (stop_requested_ || next_produce_ >= end_index_) break;
      }
      StagedBatch sb = Produce(next_produce_);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_requested_) break;
        queue_.push_back(std::move(sb));
        ++next_produce_;
        ++stats_.batches_produced;
        stats_.max_queue_depth = std::max(
            stats_.max_queue_depth, static_cast<int64_t>(queue_.size()));
        if (next_produce_ >= end_index_) producer_done_ = true;
      }
      queue_not_empty_.notify_one();
      if (producer_done_) break;
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    producer_error_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    producer_done_ = true;
  }
  queue_not_empty_.notify_all();
}

void LookaheadStage::StopProducer() {
  if (!producer_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  queue_not_full_.notify_all();
  queue_not_empty_.notify_all();
  producer_.join();
}

StagedBatch LookaheadStage::Next() {
  TTREC_CHECK_INTERNAL(next_consume_ < end_index_,
                       "LookaheadStage::Next past the end of the stream");
  if (!producer_.joinable()) {
    // Inline mode (depth 0, threaded off, or the producer already joined
    // after an error/rollback): generate on the caller's thread. Identical
    // bytes to the threaded path — generation order is the schedule's.
    StagedBatch sb = [&] {
      try {
        return Produce(next_consume_);
      } catch (const std::exception& e) {
        throw PipelineError(std::string("lookahead stage failed at batch ") +
                            std::to_string(next_consume_) + ": " + e.what());
      }
    }();
    ++next_produce_;
    ++next_consume_;
    ++stats_.batches_produced;
    return sb;
  }

  std::unique_lock<std::mutex> lock(mu_);
  const auto w0 = Clock::now();
  queue_not_empty_.wait(lock,
                        [this] { return !queue_.empty() || producer_done_; });
  stats_.consumer_wait_us += Micros(w0, Clock::now());
  if (queue_.empty()) {
    if (producer_error_ != nullptr) {
      std::exception_ptr err = std::exchange(producer_error_, nullptr);
      try {
        std::rethrow_exception(err);
      } catch (const std::exception& e) {
        throw PipelineError(std::string("lookahead producer failed: ") +
                            e.what());
      } catch (...) {
        throw PipelineError("lookahead producer failed");
      }
    }
    throw PipelineError("lookahead producer ended early (batch " +
                        std::to_string(next_consume_) + " of " +
                        std::to_string(end_index_) + ")");
  }
  StagedBatch sb = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  queue_not_full_.notify_one();
  TTREC_CHECK_INTERNAL(sb.index == next_consume_,
                       "LookaheadStage: staged batch out of order (", sb.index,
                       " vs ", next_consume_, ")");
  ++next_consume_;
  return sb;
}

void LookaheadStage::Pause() { StopProducer(); }

void LookaheadStage::Resume() { StartProducer(); }

void LookaheadStage::Restart(int64_t next_index) {
  TTREC_CHECK_CONFIG(next_index >= 0 && next_index <= end_index_,
                     "LookaheadStage::Restart: index ", next_index,
                     " outside [0, ", end_index_, "]");
  StopProducer();
  queue_.clear();
  producer_error_ = nullptr;
  next_produce_ = next_index;
  next_consume_ = next_index;
  ++stats_.restarts;
  StartProducer();
}

LookaheadStage::Stats LookaheadStage::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ttrec
