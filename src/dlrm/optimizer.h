// Optimizer selection for DLRM training.
//
// The paper (and MLPerf-DLRM) trains with plain SGD; production DLRMs use
// Adagrad variants for the sparse tables. Both are supported end to end:
// SGD everywhere, or Adagrad (elementwise on MLPs/TT cores/cached rows,
// row-wise on dense embedding tables, matching FBGEMM's rowwise_adagrad).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/check.h"

namespace ttrec {

struct OptimizerConfig {
  enum class Kind : uint8_t { kSgd, kAdagrad };
  Kind kind = Kind::kSgd;
  float lr = 0.1f;
  float eps = 1e-8f;  // Adagrad denominator floor

  static OptimizerConfig Sgd(float lr) { return {Kind::kSgd, lr, 1e-8f}; }
  static OptimizerConfig Adagrad(float lr, float eps = 1e-8f) {
    return {Kind::kAdagrad, lr, eps};
  }
};

inline const char* OptimizerName(OptimizerConfig::Kind kind) {
  switch (kind) {
    case OptimizerConfig::Kind::kSgd:
      return "sgd";
    case OptimizerConfig::Kind::kAdagrad:
      return "adagrad";
  }
  return "unknown";
}

inline OptimizerConfig::Kind OptimizerKindFromName(const std::string& name) {
  if (name == "sgd") return OptimizerConfig::Kind::kSgd;
  if (name == "adagrad") return OptimizerConfig::Kind::kAdagrad;
  throw ConfigError("unknown optimizer: " + name);
}

}  // namespace ttrec
