#include "dlrm/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <utility>

#include "tensor/atomic_file.h"
#include "tensor/check.h"
#include "tensor/serialize.h"

namespace ttrec {

namespace {
constexpr uint32_t kSnapshotMagic = 0x4E535454;  // "TTSN"
constexpr uint32_t kSnapshotVersion = 1;
constexpr uint32_t kNumSections = 4;
constexpr const char* kSnapshotExt = ".ttsn";
}  // namespace

namespace {

/// Shared framing for both save flavors; `write_data` fills the "data"
/// section (directly from the source, or spliced from a captured payload —
/// identical bytes either way).
template <typename WriteData>
void SaveSnapshotImpl(std::ostream& os, const DlrmModel& model,
                      const SnapshotMeta& meta, WriteData&& write_data) {
  BinaryWriter w(os);
  w.WriteU32(kSnapshotMagic);
  w.WriteU32(kSnapshotVersion);
  w.WriteU32(kNumSections);
  w.BeginSection("meta");
  w.WriteI64(meta.iteration);
  w.WriteString(meta.optimizer);
  w.EndSection();
  w.BeginSection("model");
  model.SaveState(w);
  w.EndSection();
  w.BeginSection("optim");
  model.SaveOptState(w);
  w.EndSection();
  w.BeginSection("data");
  write_data(w);
  w.EndSection();
  w.Finish();
}

}  // namespace

void SaveTrainingSnapshot(std::ostream& os, const DlrmModel& model,
                          const BatchSource& data, const SnapshotMeta& meta) {
  SaveSnapshotImpl(os, model, meta,
                   [&](BinaryWriter& w) { data.SaveState(w); });
}

void SaveTrainingSnapshot(std::ostream& os, const DlrmModel& model,
                          std::string_view data_state,
                          const SnapshotMeta& meta) {
  SaveSnapshotImpl(os, model, meta, [&](BinaryWriter& w) {
    w.WriteBytes(data_state.data(), data_state.size());
  });
}

SnapshotMeta LoadTrainingSnapshot(std::istream& is, DlrmModel& model,
                                  BatchSource& data) {
  BinaryReader r(is);
  TTREC_CHECK(r.ReadU32() == kSnapshotMagic,
              "LoadTrainingSnapshot: bad magic (not a TTSN snapshot)");
  const uint32_t version = r.ReadU32();
  TTREC_CHECK(version == kSnapshotVersion,
              "LoadTrainingSnapshot: unsupported snapshot version ", version);
  const uint32_t sections = r.ReadU32();
  TTREC_CHECK(sections == kNumSections,
              "LoadTrainingSnapshot: expected ", kNumSections,
              " sections, file declares ", sections);
  SnapshotMeta meta;
  r.BeginSection("meta");
  meta.iteration = r.ReadI64();
  meta.optimizer = r.ReadString();
  r.SkipBytes(r.SectionRemaining());  // forward-compatible meta fields
  r.EndSection();
  r.BeginSection("model");
  model.LoadState(r);
  r.EndSection();
  r.BeginSection("optim");
  model.LoadOptState(r);
  r.EndSection();
  r.BeginSection("data");
  data.LoadState(r);
  r.EndSection();
  r.Finish();
  return meta;
}

void SaveTrainingSnapshotToFile(const std::string& path,
                                const DlrmModel& model,
                                const BatchSource& data,
                                const SnapshotMeta& meta) {
  AtomicWriteFile(path, [&](std::ostream& os) {
    SaveTrainingSnapshot(os, model, data, meta);
    os.flush();
    TTREC_CHECK(os.good(), "SaveTrainingSnapshotToFile: write failed for ",
                path);
  });
}

SnapshotMeta LoadTrainingSnapshotFromFile(const std::string& path,
                                          DlrmModel& model,
                                          BatchSource& data) {
  std::ifstream is(path, std::ios::binary);
  TTREC_CHECK(is.is_open(), "LoadTrainingSnapshotFromFile: cannot open ",
              path);
  return LoadTrainingSnapshot(is, model, data);
}

SnapshotVerifyResult VerifySnapshotFile(const std::string& path) {
  SnapshotVerifyResult res;
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    res.error = "cannot open " + path;
    return res;
  }
  BinaryReader r(is);
  try {
    TTREC_CHECK(r.ReadU32() == kSnapshotMagic,
                "bad magic (not a TTSN snapshot)");
    res.version = r.ReadU32();
    TTREC_CHECK(res.version == kSnapshotVersion,
                "unsupported snapshot version ", res.version);
    const uint32_t sections = r.ReadU32();
    TTREC_CHECK(sections <= 64, "implausible section count ", sections);
    for (uint32_t i = 0; i < sections; ++i) {
      const BinaryReader::SectionHeader h = r.BeginAnySection();
      res.sections.push_back({h.name, h.size, false});
      if (h.name == "meta") {
        res.iteration = r.ReadI64();
        res.optimizer = r.ReadString();
      }
      r.SkipBytes(r.SectionRemaining());
      r.EndSection();
      res.sections.back().crc_ok = true;
    }
    r.Finish();
    res.ok = true;
  } catch (const TtRecError& e) {
    res.error = e.what();
  }
  return res;
}

CheckpointFileStatus VerifyModelCheckpointFile(const std::string& path) {
  // Mirrors DlrmModel::SaveCheckpoint's framing: u32 magic "DLRM",
  // u32 version, payload, u64 FNV-1a trailer over everything before it.
  constexpr uint32_t kDlrmMagic = 0x4D524C44;
  constexpr uint32_t kDlrmVersion = 1;
  CheckpointFileStatus res;
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    res.error = "cannot open " + path;
    return res;
  }
  const std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                                std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(uint32_t) * 2 + sizeof(uint64_t)) {
    res.error =
        "truncated checkpoint (" + std::to_string(bytes.size()) + " bytes)";
    return res;
  }
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  if (magic != kDlrmMagic) {
    res.error = "bad magic (not a DLRM checkpoint)";
    return res;
  }
  std::memcpy(&res.version, bytes.data() + sizeof(magic),
              sizeof(res.version));
  if (res.version != kDlrmVersion) {
    res.error =
        "unsupported checkpoint version " + std::to_string(res.version);
    return res;
  }
  const size_t payload = bytes.size() - sizeof(uint64_t);
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + payload, sizeof(stored));
  if (stored != Fnv1a(bytes.data(), payload)) {
    res.error = "checksum mismatch (file corrupt or truncated)";
    return res;
  }
  res.ok = true;
  return res;
}

namespace {

namespace fs = std::filesystem;

/// `<prefix>-<digits>.ttsn` -> iteration, or -1 when the name is not ours.
int64_t ParseIteration(const std::string& filename,
                       const std::string& prefix) {
  const std::string head = prefix + "-";
  const std::string tail = kSnapshotExt;
  if (filename.size() <= head.size() + tail.size()) return -1;
  if (filename.compare(0, head.size(), head) != 0) return -1;
  if (filename.compare(filename.size() - tail.size(), tail.size(), tail) !=
      0) {
    return -1;
  }
  int64_t v = 0;
  for (size_t i = head.size(); i < filename.size() - tail.size(); ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return -1;
    v = v * 10 + (c - '0');
    if (v < 0) return -1;  // overflow
  }
  return v;
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointManagerConfig config)
    : config_(std::move(config)) {
  TTREC_CHECK_CONFIG(!config_.directory.empty(),
                     "CheckpointManager: directory must not be empty");
  TTREC_CHECK_CONFIG(!config_.prefix.empty(),
                     "CheckpointManager: prefix must not be empty");
  TTREC_CHECK_CONFIG(config_.keep_last >= 1,
                     "CheckpointManager: keep_last must be >= 1");
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  TTREC_CHECK(fs::is_directory(config_.directory, ec),
              "CheckpointManager: cannot create directory ",
              config_.directory);
}

std::string CheckpointManager::PathFor(int64_t iteration) const {
  TTREC_CHECK_CONFIG(iteration >= 0,
                     "CheckpointManager: iteration must be >= 0");
  char digits[24];
  std::snprintf(digits, sizeof(digits), "%012lld",
                static_cast<long long>(iteration));
  return (fs::path(config_.directory) /
          (config_.prefix + "-" + digits + kSnapshotExt))
      .string();
}

std::vector<std::string> CheckpointManager::ListSnapshots() const {
  std::vector<std::pair<int64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const int64_t it =
        ParseIteration(entry.path().filename().string(), config_.prefix);
    if (it >= 0) found.emplace_back(it, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [it, path] : found) paths.push_back(std::move(path));
  return paths;
}

std::string CheckpointManager::Save(const DlrmModel& model,
                                    const BatchSource& data,
                                    const SnapshotMeta& meta) {
  const std::string path = PathFor(meta.iteration);
  SaveTrainingSnapshotToFile(path, model, data, meta);
  Prune();
  return path;
}

std::string CheckpointManager::Save(const DlrmModel& model,
                                    std::string_view data_state,
                                    const SnapshotMeta& meta) {
  const std::string path = PathFor(meta.iteration);
  AtomicWriteFile(path, [&](std::ostream& os) {
    SaveTrainingSnapshot(os, model, data_state, meta);
    os.flush();
    TTREC_CHECK(os.good(), "CheckpointManager::Save: write failed for ",
                path);
  });
  Prune();
  return path;
}

std::string CheckpointManager::SaveAsync(const DlrmModel& model,
                                         std::string data_state,
                                         const SnapshotMeta& meta) {
  const std::string path = PathFor(meta.iteration);
  // Serialize on the caller's thread: this is the part that must observe
  // the model before the next optimizer step mutates it. The bytes then
  // travel to the writer thread, which owns the fsync.
  std::ostringstream buf;
  SaveTrainingSnapshot(buf, model, std::string_view(data_state), meta);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (writer_error_ != nullptr) {
      std::exception_ptr err = std::exchange(writer_error_, nullptr);
      lock.unlock();
      std::rethrow_exception(err);
    }
    pending_.push_back(PendingWrite{path, std::move(buf).str()});
    if (!writer_.joinable()) {
      writer_ = std::thread([this] { WriterLoop(); });
    }
  }
  work_cv_.notify_one();
  return path;
}

void CheckpointManager::CommitBytes(const std::string& path,
                                    const std::string& bytes) {
  AtomicWriteFile(path, [&](std::ostream& os) {
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    TTREC_CHECK(os.good(), "CheckpointManager: async write failed for ",
                path);
  });
  Prune();
}

void CheckpointManager::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_writer_ || !pending_.empty(); });
    if (pending_.empty()) break;  // stop requested and queue drained
    PendingWrite job = std::move(pending_.front());
    pending_.pop_front();
    writer_busy_ = true;
    lock.unlock();
    const auto t0 = std::chrono::steady_clock::now();
    std::exception_ptr failure;
    try {
      CommitBytes(job.path, job.bytes);
    } catch (...) {
      failure = std::current_exception();
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    lock.lock();
    writer_busy_ = false;
    background_seconds_ += seconds;
    if (failure != nullptr) {
      if (writer_error_ == nullptr) writer_error_ = failure;
    } else {
      ++async_completed_;
    }
    idle_cv_.notify_all();
  }
}

void CheckpointManager::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_.empty() && !writer_busy_; });
  if (writer_error_ != nullptr) {
    std::exception_ptr err = std::exchange(writer_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

int64_t CheckpointManager::async_writes_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return async_completed_;
}

double CheckpointManager::background_write_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return background_seconds_;
}

CheckpointManager::~CheckpointManager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_writer_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

void CheckpointManager::Prune() {
  std::vector<std::string> snaps = ListSnapshots();
  const size_t keep = static_cast<size_t>(config_.keep_last);
  if (snaps.size() <= keep) return;
  for (size_t i = 0; i + keep < snaps.size(); ++i) {
    std::error_code ec;
    fs::remove(snaps[i], ec);  // best effort; a stale file is harmless
  }
}

bool CheckpointManager::RestoreLatest(DlrmModel& model, BatchSource& data,
                                      SnapshotMeta* meta_out) {
  // Queued async snapshots are part of "newest"; commit them first (and
  // surface any background failure instead of silently restoring past it).
  WaitIdle();
  skipped_.clear();
  std::vector<std::string> snaps = ListSnapshots();
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    const SnapshotVerifyResult v = VerifySnapshotFile(*it);
    if (!v.ok) {
      skipped_.push_back(*it + ": " + v.error);
      continue;
    }
    try {
      const SnapshotMeta meta =
          LoadTrainingSnapshotFromFile(*it, model, data);
      if (meta_out != nullptr) *meta_out = meta;
      return true;
    } catch (const TtRecError& e) {
      // CRCs were fine but the payload does not fit this model (e.g.
      // architecture drift); try the next-older snapshot.
      skipped_.push_back(*it + ": " + e.what());
    }
  }
  return false;
}

}  // namespace ttrec
