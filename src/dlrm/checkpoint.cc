#include "dlrm/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "tensor/atomic_file.h"
#include "tensor/check.h"
#include "tensor/serialize.h"

namespace ttrec {

namespace {
constexpr uint32_t kSnapshotMagic = 0x4E535454;  // "TTSN"
constexpr uint32_t kSnapshotVersion = 1;
constexpr uint32_t kNumSections = 4;
constexpr const char* kSnapshotExt = ".ttsn";
}  // namespace

void SaveTrainingSnapshot(std::ostream& os, const DlrmModel& model,
                          const SyntheticCriteo& data,
                          const SnapshotMeta& meta) {
  BinaryWriter w(os);
  w.WriteU32(kSnapshotMagic);
  w.WriteU32(kSnapshotVersion);
  w.WriteU32(kNumSections);
  w.BeginSection("meta");
  w.WriteI64(meta.iteration);
  w.WriteString(meta.optimizer);
  w.EndSection();
  w.BeginSection("model");
  model.SaveState(w);
  w.EndSection();
  w.BeginSection("optim");
  model.SaveOptState(w);
  w.EndSection();
  w.BeginSection("data");
  data.SaveState(w);
  w.EndSection();
  w.Finish();
}

SnapshotMeta LoadTrainingSnapshot(std::istream& is, DlrmModel& model,
                                  SyntheticCriteo& data) {
  BinaryReader r(is);
  TTREC_CHECK(r.ReadU32() == kSnapshotMagic,
              "LoadTrainingSnapshot: bad magic (not a TTSN snapshot)");
  const uint32_t version = r.ReadU32();
  TTREC_CHECK(version == kSnapshotVersion,
              "LoadTrainingSnapshot: unsupported snapshot version ", version);
  const uint32_t sections = r.ReadU32();
  TTREC_CHECK(sections == kNumSections,
              "LoadTrainingSnapshot: expected ", kNumSections,
              " sections, file declares ", sections);
  SnapshotMeta meta;
  r.BeginSection("meta");
  meta.iteration = r.ReadI64();
  meta.optimizer = r.ReadString();
  r.SkipBytes(r.SectionRemaining());  // forward-compatible meta fields
  r.EndSection();
  r.BeginSection("model");
  model.LoadState(r);
  r.EndSection();
  r.BeginSection("optim");
  model.LoadOptState(r);
  r.EndSection();
  r.BeginSection("data");
  data.LoadState(r);
  r.EndSection();
  r.Finish();
  return meta;
}

void SaveTrainingSnapshotToFile(const std::string& path,
                                const DlrmModel& model,
                                const SyntheticCriteo& data,
                                const SnapshotMeta& meta) {
  AtomicWriteFile(path, [&](std::ostream& os) {
    SaveTrainingSnapshot(os, model, data, meta);
    os.flush();
    TTREC_CHECK(os.good(), "SaveTrainingSnapshotToFile: write failed for ",
                path);
  });
}

SnapshotMeta LoadTrainingSnapshotFromFile(const std::string& path,
                                          DlrmModel& model,
                                          SyntheticCriteo& data) {
  std::ifstream is(path, std::ios::binary);
  TTREC_CHECK(is.is_open(), "LoadTrainingSnapshotFromFile: cannot open ",
              path);
  return LoadTrainingSnapshot(is, model, data);
}

SnapshotVerifyResult VerifySnapshotFile(const std::string& path) {
  SnapshotVerifyResult res;
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    res.error = "cannot open " + path;
    return res;
  }
  BinaryReader r(is);
  try {
    TTREC_CHECK(r.ReadU32() == kSnapshotMagic,
                "bad magic (not a TTSN snapshot)");
    res.version = r.ReadU32();
    TTREC_CHECK(res.version == kSnapshotVersion,
                "unsupported snapshot version ", res.version);
    const uint32_t sections = r.ReadU32();
    TTREC_CHECK(sections <= 64, "implausible section count ", sections);
    for (uint32_t i = 0; i < sections; ++i) {
      const BinaryReader::SectionHeader h = r.BeginAnySection();
      res.sections.push_back({h.name, h.size, false});
      if (h.name == "meta") {
        res.iteration = r.ReadI64();
        res.optimizer = r.ReadString();
      }
      r.SkipBytes(r.SectionRemaining());
      r.EndSection();
      res.sections.back().crc_ok = true;
    }
    r.Finish();
    res.ok = true;
  } catch (const TtRecError& e) {
    res.error = e.what();
  }
  return res;
}

CheckpointFileStatus VerifyModelCheckpointFile(const std::string& path) {
  // Mirrors DlrmModel::SaveCheckpoint's framing: u32 magic "DLRM",
  // u32 version, payload, u64 FNV-1a trailer over everything before it.
  constexpr uint32_t kDlrmMagic = 0x4D524C44;
  constexpr uint32_t kDlrmVersion = 1;
  CheckpointFileStatus res;
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    res.error = "cannot open " + path;
    return res;
  }
  const std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                                std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(uint32_t) * 2 + sizeof(uint64_t)) {
    res.error =
        "truncated checkpoint (" + std::to_string(bytes.size()) + " bytes)";
    return res;
  }
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  if (magic != kDlrmMagic) {
    res.error = "bad magic (not a DLRM checkpoint)";
    return res;
  }
  std::memcpy(&res.version, bytes.data() + sizeof(magic),
              sizeof(res.version));
  if (res.version != kDlrmVersion) {
    res.error =
        "unsupported checkpoint version " + std::to_string(res.version);
    return res;
  }
  const size_t payload = bytes.size() - sizeof(uint64_t);
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + payload, sizeof(stored));
  if (stored != Fnv1a(bytes.data(), payload)) {
    res.error = "checksum mismatch (file corrupt or truncated)";
    return res;
  }
  res.ok = true;
  return res;
}

namespace {

namespace fs = std::filesystem;

/// `<prefix>-<digits>.ttsn` -> iteration, or -1 when the name is not ours.
int64_t ParseIteration(const std::string& filename,
                       const std::string& prefix) {
  const std::string head = prefix + "-";
  const std::string tail = kSnapshotExt;
  if (filename.size() <= head.size() + tail.size()) return -1;
  if (filename.compare(0, head.size(), head) != 0) return -1;
  if (filename.compare(filename.size() - tail.size(), tail.size(), tail) !=
      0) {
    return -1;
  }
  int64_t v = 0;
  for (size_t i = head.size(); i < filename.size() - tail.size(); ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return -1;
    v = v * 10 + (c - '0');
    if (v < 0) return -1;  // overflow
  }
  return v;
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointManagerConfig config)
    : config_(std::move(config)) {
  TTREC_CHECK_CONFIG(!config_.directory.empty(),
                     "CheckpointManager: directory must not be empty");
  TTREC_CHECK_CONFIG(!config_.prefix.empty(),
                     "CheckpointManager: prefix must not be empty");
  TTREC_CHECK_CONFIG(config_.keep_last >= 1,
                     "CheckpointManager: keep_last must be >= 1");
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  TTREC_CHECK(fs::is_directory(config_.directory, ec),
              "CheckpointManager: cannot create directory ",
              config_.directory);
}

std::string CheckpointManager::PathFor(int64_t iteration) const {
  TTREC_CHECK_CONFIG(iteration >= 0,
                     "CheckpointManager: iteration must be >= 0");
  char digits[24];
  std::snprintf(digits, sizeof(digits), "%012lld",
                static_cast<long long>(iteration));
  return (fs::path(config_.directory) /
          (config_.prefix + "-" + digits + kSnapshotExt))
      .string();
}

std::vector<std::string> CheckpointManager::ListSnapshots() const {
  std::vector<std::pair<int64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const int64_t it =
        ParseIteration(entry.path().filename().string(), config_.prefix);
    if (it >= 0) found.emplace_back(it, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [it, path] : found) paths.push_back(std::move(path));
  return paths;
}

std::string CheckpointManager::Save(const DlrmModel& model,
                                    const SyntheticCriteo& data,
                                    const SnapshotMeta& meta) {
  const std::string path = PathFor(meta.iteration);
  SaveTrainingSnapshotToFile(path, model, data, meta);
  Prune();
  return path;
}

void CheckpointManager::Prune() {
  std::vector<std::string> snaps = ListSnapshots();
  const size_t keep = static_cast<size_t>(config_.keep_last);
  if (snaps.size() <= keep) return;
  for (size_t i = 0; i + keep < snaps.size(); ++i) {
    std::error_code ec;
    fs::remove(snaps[i], ec);  // best effort; a stale file is harmless
  }
}

bool CheckpointManager::RestoreLatest(DlrmModel& model, SyntheticCriteo& data,
                                      SnapshotMeta* meta_out) {
  skipped_.clear();
  std::vector<std::string> snaps = ListSnapshots();
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    const SnapshotVerifyResult v = VerifySnapshotFile(*it);
    if (!v.ok) {
      skipped_.push_back(*it + ": " + v.error);
      continue;
    }
    try {
      const SnapshotMeta meta =
          LoadTrainingSnapshotFromFile(*it, model, data);
      if (meta_out != nullptr) *meta_out = meta;
      return true;
    } catch (const TtRecError& e) {
      // CRCs were fine but the payload does not fit this model (e.g.
      // architecture drift); try the next-older snapshot.
      skipped_.push_back(*it + ": " + e.what());
    }
  }
  return false;
}

}  // namespace ttrec
