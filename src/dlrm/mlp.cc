#include "dlrm/mlp.h"

#include <cmath>

#include "tensor/check.h"
#include "tensor/gemm.h"

namespace ttrec {

LinearLayer::LinearLayer(int64_t in_dim, int64_t out_dim, bool relu, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      relu_(relu),
      weight_({out_dim, in_dim}),
      bias_({out_dim}),
      dweight_({out_dim, in_dim}),
      dbias_({out_dim}) {
  TTREC_CHECK_CONFIG(in_dim >= 1 && out_dim >= 1,
                     "LinearLayer: dims must be positive");
  const double w_std =
      std::sqrt(2.0 / static_cast<double>(in_dim + out_dim));
  for (int64_t i = 0; i < weight_.numel(); ++i) {
    weight_.data()[i] = static_cast<float>(rng.Normal(0.0, w_std));
  }
  const double b_std = std::sqrt(1.0 / static_cast<double>(out_dim));
  for (int64_t i = 0; i < bias_.numel(); ++i) {
    bias_.data()[i] = static_cast<float>(rng.Normal(0.0, b_std));
  }
}

void LinearLayer::Forward(const float* x, int64_t batch, float* y) {
  TTREC_CHECK(batch >= 0, "negative batch");
  cached_batch_ = batch;
  cached_x_.assign(x, x + batch * in_dim_);
  // y = x * W^T.
  Gemm(Trans::kNo, Trans::kYes, batch, out_dim_, in_dim_, 1.0f, x, in_dim_,
       weight_.data(), in_dim_, 0.0f, y, out_dim_);
  for (int64_t b = 0; b < batch; ++b) {
    float* yb = y + b * out_dim_;
    for (int64_t j = 0; j < out_dim_; ++j) {
      yb[j] += bias_.data()[j];
      if (relu_ && yb[j] < 0.0f) yb[j] = 0.0f;
    }
  }
  cached_y_.assign(y, y + batch * out_dim_);
}

void LinearLayer::ForwardInference(const float* x, int64_t batch,
                                   float* y) const {
  TTREC_CHECK(batch >= 0, "negative batch");
  // Same kernel and epilogue as Forward, minus the activation caching.
  Gemm(Trans::kNo, Trans::kYes, batch, out_dim_, in_dim_, 1.0f, x, in_dim_,
       weight_.data(), in_dim_, 0.0f, y, out_dim_);
  for (int64_t b = 0; b < batch; ++b) {
    float* yb = y + b * out_dim_;
    for (int64_t j = 0; j < out_dim_; ++j) {
      yb[j] += bias_.data()[j];
      if (relu_ && yb[j] < 0.0f) yb[j] = 0.0f;
    }
  }
}

void LinearLayer::Backward(const float* dy, int64_t batch, float* dx) {
  TTREC_CHECK(batch == cached_batch_,
              "Backward batch size does not match the preceding Forward");
  // ReLU gate: dy_eff = dy * 1[y > 0]. (y == 0 treats the unit as off.)
  std::vector<float> dy_eff;
  const float* g = dy;
  if (relu_) {
    dy_eff.assign(dy, dy + batch * out_dim_);
    for (int64_t i = 0; i < batch * out_dim_; ++i) {
      if (cached_y_[static_cast<size_t>(i)] <= 0.0f) {
        dy_eff[static_cast<size_t>(i)] = 0.0f;
      }
    }
    g = dy_eff.data();
  }
  // dW += g^T x : (out x in).
  Gemm(Trans::kYes, Trans::kNo, out_dim_, in_dim_, batch, 1.0f, g, out_dim_,
       cached_x_.data(), in_dim_, 1.0f, dweight_.data(), in_dim_);
  // db += column sums of g.
  for (int64_t b = 0; b < batch; ++b) {
    const float* gb = g + b * out_dim_;
    for (int64_t j = 0; j < out_dim_; ++j) dbias_.data()[j] += gb[j];
  }
  // dx = g * W : (batch x in).
  if (dx != nullptr) {
    Gemm(Trans::kNo, Trans::kNo, batch, in_dim_, out_dim_, 1.0f, g, out_dim_,
         weight_.data(), in_dim_, 0.0f, dx, in_dim_);
  }
}

void LinearLayer::ApplySgd(float lr) {
  weight_.Axpy(-lr, dweight_);
  bias_.Axpy(-lr, dbias_);
  ZeroGrad();
}

namespace {
void AdagradStep(Tensor& w, Tensor& g, Tensor& state, float lr, float eps) {
  if (state.empty()) state = Tensor(w.shape());
  float* wp = w.data();
  float* gp = g.data();
  float* sp = state.data();
  for (int64_t i = 0; i < w.numel(); ++i) {
    sp[i] += gp[i] * gp[i];
    wp[i] -= lr * gp[i] / (std::sqrt(sp[i]) + eps);
    gp[i] = 0.0f;
  }
}
}  // namespace

void LinearLayer::ApplyAdagrad(float lr, float eps) {
  TTREC_CHECK_CONFIG(eps > 0.0f, "ApplyAdagrad: eps must be positive");
  AdagradStep(weight_, dweight_, adagrad_weight_, lr, eps);
  AdagradStep(bias_, dbias_, adagrad_bias_, lr, eps);
}

void LinearLayer::ZeroGrad() {
  dweight_.Fill(0.0f);
  dbias_.Fill(0.0f);
}

namespace {
double TensorSqNorm(const Tensor& t) {
  double sq = 0.0;
  const float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    sq += static_cast<double>(p[i]) * p[i];
  }
  return sq;
}

void TensorScale(Tensor& t, float scale) {
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] *= scale;
}
}  // namespace

double LinearLayer::GradSqNorm() const {
  return TensorSqNorm(dweight_) + TensorSqNorm(dbias_);
}

void LinearLayer::ScaleGrads(float scale) {
  TensorScale(dweight_, scale);
  TensorScale(dbias_, scale);
}

void LinearLayer::SaveOptState(BinaryWriter& w) const {
  w.WriteU32(adagrad_weight_.empty() ? 0u : 1u);
  if (!adagrad_weight_.empty()) {
    SaveTensor(w, adagrad_weight_);
    SaveTensor(w, adagrad_bias_);
  }
}

void LinearLayer::LoadOptState(BinaryReader& r) {
  const uint32_t present = r.ReadU32();
  if (present == 0) {
    adagrad_weight_ = Tensor();
    adagrad_bias_ = Tensor();
    return;
  }
  TTREC_CHECK_CONFIG(present == 1, "LinearLayer::LoadOptState: bad marker");
  Tensor aw = LoadTensor(r);
  Tensor ab = LoadTensor(r);
  TTREC_CHECK_SHAPE(aw.shape() == weight_.shape() &&
                        ab.shape() == bias_.shape(),
                    "LinearLayer::LoadOptState: accumulator shape mismatch");
  adagrad_weight_ = std::move(aw);
  adagrad_bias_ = std::move(ab);
}

Mlp::Mlp(std::vector<int64_t> dims, bool final_relu, Rng& rng) {
  TTREC_CHECK_CONFIG(dims.size() >= 2, "Mlp: need at least input and output");
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool relu = (i + 2 < dims.size()) || final_relu;
    layers_.emplace_back(dims[i], dims[i + 1], relu, rng);
  }
  act_.resize(layers_.size());
}

void Mlp::Forward(const float* x, int64_t batch, float* y) {
  const float* cur = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    float* out = (i + 1 == layers_.size())
                     ? y
                     : (act_[i].assign(
                            static_cast<size_t>(batch *
                                                layers_[i].out_dim()),
                            0.0f),
                        act_[i].data());
    layers_[i].Forward(cur, batch, out);
    cur = out;
  }
}

void Mlp::ForwardInference(const float* x, int64_t batch, float* y,
                           std::vector<std::vector<float>>& act) const {
  act.resize(layers_.size());
  const float* cur = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    float* out;
    if (i + 1 == layers_.size()) {
      out = y;
    } else {
      act[i].assign(static_cast<size_t>(batch * layers_[i].out_dim()), 0.0f);
      out = act[i].data();
    }
    layers_[i].ForwardInference(cur, batch, out);
    cur = out;
  }
}

void Mlp::Backward(const float* dy, int64_t batch, float* dx) {
  std::vector<float> grad_buf;
  const float* cur = dy;
  for (size_t i = layers_.size(); i-- > 0;) {
    if (i == 0) {
      layers_[0].Backward(cur, batch, dx);
    } else {
      std::vector<float> next(
          static_cast<size_t>(batch * layers_[i].in_dim()));
      layers_[i].Backward(cur, batch, next.data());
      grad_buf = std::move(next);
      cur = grad_buf.data();
    }
  }
}

void Mlp::ApplySgd(float lr) {
  for (LinearLayer& l : layers_) l.ApplySgd(lr);
}

void Mlp::ApplyAdagrad(float lr, float eps) {
  for (LinearLayer& l : layers_) l.ApplyAdagrad(lr, eps);
}

void Mlp::ZeroGrad() {
  for (LinearLayer& l : layers_) l.ZeroGrad();
}

void LinearLayer::SaveState(BinaryWriter& w) const {
  SaveTensor(w, weight_);
  SaveTensor(w, bias_);
}

void LinearLayer::LoadState(BinaryReader& r) {
  Tensor w2 = LoadTensor(r);
  Tensor b2 = LoadTensor(r);
  TTREC_CHECK_SHAPE(w2.shape() == weight_.shape() &&
                        b2.shape() == bias_.shape(),
                    "LinearLayer::LoadState: shape mismatch");
  weight_ = std::move(w2);
  bias_ = std::move(b2);
  ZeroGrad();
}

void Mlp::SaveState(BinaryWriter& w) const {
  for (const LinearLayer& l : layers_) l.SaveState(w);
}

void Mlp::LoadState(BinaryReader& r) {
  for (LinearLayer& l : layers_) l.LoadState(r);
}

double Mlp::GradSqNorm() const {
  double sq = 0.0;
  for (const LinearLayer& l : layers_) sq += l.GradSqNorm();
  return sq;
}

void Mlp::ScaleGrads(float scale) {
  for (LinearLayer& l : layers_) l.ScaleGrads(scale);
}

void Mlp::SaveOptState(BinaryWriter& w) const {
  for (const LinearLayer& l : layers_) l.SaveOptState(w);
}

void Mlp::LoadOptState(BinaryReader& r) {
  for (LinearLayer& l : layers_) l.LoadOptState(r);
}

int64_t Mlp::NumParams() const {
  int64_t total = 0;
  for (const LinearLayer& l : layers_) total += l.NumParams();
  return total;
}

}  // namespace ttrec
