// Binary cross-entropy with logits (the DLRM click objective) and the
// evaluation metrics the paper reports: test accuracy, BCE loss, and AUC.
#pragma once

#include <cstdint>
#include <span>

namespace ttrec {

/// Mean BCE over the batch given raw logits; writes dL/dlogit into
/// `grad_logits` (same length) unless null. Numerically stable
/// (log-sum-exp form). Labels must be 0 or 1.
double BceWithLogits(std::span<const float> logits,
                     std::span<const float> labels, float* grad_logits);

/// Fraction of samples where sigmoid(logit) >= 0.5 matches the label.
double BinaryAccuracy(std::span<const float> logits,
                      std::span<const float> labels);

/// Area under the ROC curve via the rank statistic; ties share ranks.
/// Returns 0.5 when only one class is present.
double AucRoc(std::span<const float> scores, std::span<const float> labels);

}  // namespace ttrec
