// DLRM dot-product feature interaction.
//
// Given the bottom-MLP output z_0 and the table outputs z_1..z_m (all
// batch x d), the interaction emits, per sample, the concatenation of z_0
// and the (m+1 choose 2) pairwise dot products <z_i, z_j> for i < j — the
// standard MLPerf-DLRM "dot" interaction feeding the top MLP.
#pragma once

#include <cstdint>
#include <vector>

namespace ttrec {

class DotInteraction {
 public:
  /// `num_features` = 1 + number of embedding tables; `dim` = embedding /
  /// bottom-MLP output dimension.
  DotInteraction(int num_features, int64_t dim);

  int num_features() const { return num_features_; }
  int64_t dim() const { return dim_; }
  int64_t num_pairs() const {
    return static_cast<int64_t>(num_features_) * (num_features_ - 1) / 2;
  }
  /// Per-sample output width: d + (F choose 2).
  int64_t out_dim() const { return dim_ + num_pairs(); }

  /// features[f] points at a (batch x dim) block; features[0] is the bottom
  /// MLP output. Writes out (batch x out_dim) and caches the inputs.
  void Forward(const std::vector<const float*>& features, int64_t batch,
               float* out);

  /// Forward without caching (Backward may not follow): same arithmetic in
  /// the same order, so the output is bitwise identical to Forward. Const
  /// and safe for concurrent callers.
  void ForwardInference(const std::vector<const float*>& features,
                        int64_t batch, float* out) const;

  /// grads[f] receives dL/d(features[f]) (batch x dim, overwritten). Must
  /// follow Forward with the same batch.
  void Backward(const float* grad_out, int64_t batch,
                const std::vector<float*>& grads);

 private:
  int num_features_;
  int64_t dim_;
  std::vector<float> cached_;  // batch x F x dim
  int64_t cached_batch_ = 0;
};

}  // namespace ttrec
