// The embedding-operator interface every table implementation plugs into
// the DLRM (paper Figure 2: the baseline EmbeddingBag and the TT-Rec block
// are interchangeable drop-ins).
//
// Implementations in this repo: DenseEmbeddingBag (the PyTorch-EmbeddingBag
// baseline), TtEmbeddingAdapter, CachedTtEmbeddingAdapter, and the related-
// work baselines (T3nsor-style TT, hashing trick, low-rank).
#pragma once

#include <cstdint>
#include <string>

#include "data/csr_batch.h"
#include "dlrm/optimizer.h"
#include "obs/metrics.h"
#include "tensor/serialize.h"

namespace ttrec {

class CachedTtEmbeddingBag;

class EmbeddingOp {
 public:
  virtual ~EmbeddingOp() = default;

  /// Pools `batch` into `output` (num_bags x emb_dim, overwritten).
  virtual void Forward(const CsrBatch& batch, float* output) = 0;

  /// Read-only forward for the serving path (src/serve/): must not mutate
  /// any operator state (no gradient buffers, no iteration counters, no
  /// cache refreshes) and must be safe for concurrent callers; output must
  /// be bitwise identical whether lookups arrive one request at a time or
  /// micro-batched. Operators the serving layer supports (dense, TT,
  /// cached TT) override; the default rejects so an unsupported operator
  /// fails loudly rather than racing.
  virtual void ForwardInference(const CsrBatch& /*batch*/,
                                float* /*output*/) const {
    throw ConfigError(Name() + " does not implement ForwardInference");
  }

  /// Pools pre-fetched rows: `rows` holds one already-decoded emb_dim row
  /// per lookup of `batch`, laid out in lookup order (row l at
  /// rows + l*emb_dim). Writes num_bags x emb_dim into `output`
  /// (overwritten), applying exactly the same weighting/accumulation
  /// arithmetic — in the same order — as ForwardInference would, so pooling
  /// rows fetched remotely (the shard router's split bags, src/shard/) is
  /// bitwise identical to pooling locally. batch.indices are still the
  /// GLOBAL row ids (cached operators key their hit path on them); only the
  /// row DATA comes from `rows`. Const and thread-safe like
  /// ForwardInference; the default rejects.
  virtual void PoolPrefetchedRows(const CsrBatch& /*batch*/,
                                  const float* /*rows*/,
                                  float* /*output*/) const {
    throw ConfigError(Name() + " does not implement PoolPrefetchedRows");
  }

  /// Accumulates parameter gradients given dL/d(output).
  virtual void Backward(const CsrBatch& batch, const float* grad_output) = 0;

  /// params -= lr * grad; clears gradients.
  virtual void ApplySgd(float lr) = 0;

  /// Applies `opt` (SGD or Adagrad). The default handles SGD and rejects
  /// optimizers the operator does not implement; operators with Adagrad
  /// support override.
  virtual void ApplyUpdate(const OptimizerConfig& opt) {
    switch (opt.kind) {
      case OptimizerConfig::Kind::kSgd:
        ApplySgd(opt.lr);
        return;
      case OptimizerConfig::Kind::kAdagrad:
        throw ConfigError(Name() + " does not implement adagrad");
    }
  }

  /// Serializes / restores the operator's learned parameters (not the
  /// optimizer state). Defaults reject; operators that participate in DLRM
  /// checkpoints (dense, TT, cached TT) override. LoadState must be called
  /// on an operator constructed with the same configuration.
  virtual void SaveState(BinaryWriter& /*w*/) const {
    throw ConfigError(Name() + " does not support checkpointing");
  }
  virtual void LoadState(BinaryReader& /*r*/) {
    throw ConfigError(Name() + " does not support checkpointing");
  }

  /// Serializes / restores optimizer state (Adagrad accumulators) so a
  /// resumed run continues the exact optimizer trajectory. The default
  /// writes an empty marker — correct for operators that carry no state
  /// beyond their parameters (pure SGD).
  virtual void SaveOptState(BinaryWriter& w) const { w.WriteU32(0); }
  virtual void LoadOptState(BinaryReader& r) {
    TTREC_CHECK_CONFIG(r.ReadU32() == 0, Name(),
                       ": checkpoint carries optimizer state this operator "
                       "cannot restore");
  }

  // Gradient guards used by the fault-tolerant trainer (skip-batch on
  // non-finite gradients, global-norm clipping). Defaults reject so a
  // guarded run fails loudly on operators that have not implemented them;
  // dense, TT, and cached TT override.

  /// Discards accumulated gradients without applying them (drop a
  /// poisoned batch).
  virtual void ZeroGrad() {
    throw ConfigError(Name() + " does not support gradient guards");
  }
  /// Sum of squares of all accumulated parameter gradients.
  virtual double GradSqNorm() const {
    throw ConfigError(Name() + " does not support gradient guards");
  }
  /// Multiplies all accumulated gradients by `scale` (gradient clipping).
  virtual void ScaleGrads(float /*scale*/) {
    throw ConfigError(Name() + " does not support gradient guards");
  }

  /// Adds this operator's lifetime statistics into `reg`. Implementations
  /// publish into shared metric names ("cache.hits", "tt.lookups", ...), so
  /// collecting a whole model into one registry sums per-table totals for
  /// free; callers that want a point-in-time view collect into a fresh
  /// registry per snapshot. Collection must be idempotent: repeated calls
  /// against the same registry leave every counter at the exact cumulative
  /// total, never double-counted — publish through stats_publisher() (which
  /// tracks a per-registry baseline and adds only the delta) rather than
  /// raw counter().Add of a cumulative value. The default records what
  /// every operator has — its parameter memory and its presence. Overrides
  /// should extend, not replace: call EmbeddingOp::CollectStats(reg) first.
  virtual void CollectStats(obs::MetricRegistry& reg) const {
    stats_publisher_.Counter(reg, "emb.tables", 1);
    stats_publisher_.Gauge(reg, "emb.memory_bytes",
                           static_cast<double>(MemoryBytes()));
  }

  /// Zeroes the resettable statistics CollectStats reports (cache hit/miss
  /// windows and the like). Default no-op: most operators report only
  /// monotone lifetime stats. Replaces the dynamic_cast reach-in the serve
  /// CLI used for cached tables.
  virtual void ResetStats() {}

  virtual int64_t num_rows() const = 0;
  virtual int64_t emb_dim() const = 0;

  /// Parameter memory in bytes (the x-axis of Figures 1/5/8).
  virtual int64_t MemoryBytes() const = 0;

  /// Peak transient working memory of one Forward/Backward call when the
  /// operator's kernels run on `num_threads` pool workers (0 = the current
  /// global ThreadPool) — what a capacity planner adds on top of
  /// MemoryBytes. Default 0: dense and baseline operators pool straight
  /// into the caller's output.
  virtual int64_t WorkspaceBytes(int /*num_threads*/ = 0) const { return 0; }

  /// The cached-TT bag backing this operator, when it has one — the hook
  /// the trainer uses to register tables with the CacheManager for global
  /// cache autotuning. Default nullptr: not cache-backed.
  virtual CachedTtEmbeddingBag* cached_bag() { return nullptr; }

  virtual std::string Name() const = 0;

 protected:
  /// Per-operator publisher for idempotent stat collection (see
  /// CollectStats). Shared by the base default and overrides.
  const obs::StatPublisher& stats_publisher() const {
    return stats_publisher_;
  }

 private:
  obs::StatPublisher stats_publisher_;
};

}  // namespace ttrec
