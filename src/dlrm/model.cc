#include "dlrm/model.h"

#include <cmath>
#include <fstream>

#include "dlrm/embedding_bag.h"
#include "dlrm/loss.h"
#include "obs/trace.h"
#include "tensor/atomic_file.h"
#include "tensor/check.h"
#include "tensor/parallel.h"
#include "tensor/serialize.h"

namespace ttrec {

namespace {

std::vector<int64_t> BottomDims(const DlrmConfig& c) {
  std::vector<int64_t> dims;
  dims.push_back(c.num_dense);
  dims.insert(dims.end(), c.bottom_hidden.begin(), c.bottom_hidden.end());
  dims.push_back(c.emb_dim);
  return dims;
}

std::vector<int64_t> TopDims(const DlrmConfig& c, int64_t inter_dim) {
  std::vector<int64_t> dims;
  dims.push_back(inter_dim);
  dims.insert(dims.end(), c.top_hidden.begin(), c.top_hidden.end());
  dims.push_back(1);
  return dims;
}

}  // namespace

DlrmModel::DlrmModel(const DlrmConfig& config,
                     std::vector<std::unique_ptr<EmbeddingOp>> tables,
                     Rng& rng)
    : config_(config),
      tables_(std::move(tables)),
      bottom_(BottomDims(config), /*final_relu=*/true, rng),
      top_(TopDims(config,
                   DotInteraction(static_cast<int>(tables_.size()) + 1,
                                  config.emb_dim)
                       .out_dim()),
           /*final_relu=*/false, rng),
      interaction_(static_cast<int>(tables_.size()) + 1, config.emb_dim) {
  TTREC_CHECK_CONFIG(!tables_.empty(), "DlrmModel: need at least one table");
  for (const auto& t : tables_) {
    TTREC_CHECK_CONFIG(t != nullptr, "DlrmModel: null table");
    TTREC_CHECK_CONFIG(t->emb_dim() == config_.emb_dim,
                       "DlrmModel: table ", t->Name(), " has emb_dim ",
                       t->emb_dim(), ", model expects ", config_.emb_dim);
  }
  emb_out_.resize(tables_.size());
}

void DlrmModel::ForwardInternal(const MiniBatch& batch, float* logits) {
  TTREC_CHECK_SHAPE(static_cast<int>(batch.sparse.size()) == num_tables(),
                    "MiniBatch has ", batch.sparse.size(),
                    " sparse features, model has ", num_tables(), " tables");
  const int64_t B = batch.batch_size();
  const int64_t d = config_.emb_dim;
  TTREC_CHECK_SHAPE(batch.dense.ndim() == 2 && batch.dense.dim(0) == B &&
                        batch.dense.dim(1) == config_.num_dense,
                    "MiniBatch dense feature shape mismatch");

  bottom_out_.assign(static_cast<size_t>(B * d), 0.0f);
  {
    TTREC_TRACE_SCOPE("dlrm.fwd.bottom_mlp");
    bottom_.Forward(batch.dense.data(), B, bottom_out_.data());
  }

  if (config_.index_policy == IndexPolicy::kClampToZero) {
    sanitized_sparse_.assign(batch.sparse.begin(), batch.sparse.end());
    for (int t = 0; t < num_tables(); ++t) {
      clamped_lookups_ +=
          sanitized_sparse_[static_cast<size_t>(t)].ApplyIndexPolicy(
              tables_[static_cast<size_t>(t)]->num_rows(),
              IndexPolicy::kClampToZero,
              tables_[static_cast<size_t>(t)]->Name());
    }
  }

  std::vector<const float*> features;
  features.reserve(tables_.size() + 1);
  features.push_back(bottom_out_.data());
  {
    TTREC_TRACE_SCOPE("dlrm.fwd.embedding");
    for (int t = 0; t < num_tables(); ++t) {
      const CsrBatch& cb = SparseFor(batch, t);
      TTREC_CHECK_SHAPE(cb.num_bags() == B, "table ", t, " has ",
                        cb.num_bags(), " bags for batch size ", B);
      auto& out = emb_out_[static_cast<size_t>(t)];
      out.assign(static_cast<size_t>(B * d), 0.0f);
      try {
        tables_[static_cast<size_t>(t)]->Forward(cb, out.data());
      } catch (const IndexError& e) {
        // Re-throw with the table identified — a bare "index out of range"
        // from a 26-table model is undebuggable.
        throw IndexError("embedding table " + std::to_string(t) + " ('" +
                         tables_[static_cast<size_t>(t)]->Name() + "', " +
                         std::to_string(tables_[static_cast<size_t>(t)]
                                            ->num_rows()) +
                         " rows): " + e.what());
      }
      features.push_back(out.data());
    }
  }

  inter_out_.assign(static_cast<size_t>(B * interaction_.out_dim()), 0.0f);
  {
    TTREC_TRACE_SCOPE("dlrm.fwd.interaction");
    interaction_.Forward(features, B, inter_out_.data());
  }
  TTREC_TRACE_SCOPE("dlrm.fwd.top_mlp");
  top_.Forward(inter_out_.data(), B, logits);
}

void DlrmModel::PredictLogits(const MiniBatch& batch, float* logits) {
  ForwardInternal(batch, logits);
}

void DlrmModel::PredictLogits(const MiniBatch& batch, float* logits,
                              InferenceScratch& s) const {
  ForwardDenseInference(batch, s);
  ForwardEmbeddingsInference(batch, s);
  ForwardTailInference(batch.batch_size(), logits, s);
}

void DlrmModel::ForwardDenseInference(const MiniBatch& batch,
                                      InferenceScratch& s) const {
  TTREC_CHECK_SHAPE(static_cast<int>(batch.sparse.size()) == num_tables(),
                    "MiniBatch has ", batch.sparse.size(),
                    " sparse features, model has ", num_tables(), " tables");
  const int64_t B = batch.batch_size();
  const int64_t d = config_.emb_dim;
  TTREC_CHECK_SHAPE(batch.dense.ndim() == 2 && batch.dense.dim(0) == B &&
                        batch.dense.dim(1) == config_.num_dense,
                    "MiniBatch dense feature shape mismatch");

  s.bottom_out.assign(static_cast<size_t>(B * d), 0.0f);
  bottom_.ForwardInference(batch.dense.data(), B, s.bottom_out.data(),
                           s.bottom_act);

  // Sanitization happens serially up front so the parallel embedding stage
  // only reads.
  if (config_.index_policy == IndexPolicy::kClampToZero) {
    s.sanitized_sparse.assign(batch.sparse.begin(), batch.sparse.end());
    for (int t = 0; t < num_tables(); ++t) {
      s.clamped_lookups +=
          s.sanitized_sparse[static_cast<size_t>(t)].ApplyIndexPolicy(
              tables_[static_cast<size_t>(t)]->num_rows(),
              IndexPolicy::kClampToZero,
              tables_[static_cast<size_t>(t)]->Name());
    }
  }
}

void DlrmModel::ForwardEmbeddingsInference(const MiniBatch& batch,
                                           InferenceScratch& s) const {
  const int64_t B = batch.batch_size();
  const int64_t d = config_.emb_dim;
  // Shard the table lookups across the pool, one table per chunk. Inner
  // kernels (BatchedGemm) also call ParallelFor; those nested calls run
  // inline on the worker, so a 26-table model keeps every core busy on
  // coarse table-level work instead of deadlocking.
  s.emb_out.resize(tables_.size());
  ParallelFor(
      num_tables(),
      [&](int64_t t_begin, int64_t t_end) {
        for (int64_t t = t_begin; t < t_end; ++t) {
          const CsrBatch& cb =
              SparseForInference(batch, static_cast<int>(t), s);
          TTREC_CHECK_SHAPE(cb.num_bags() == B, "table ", t, " has ",
                            cb.num_bags(), " bags for batch size ", B);
          auto& out = s.emb_out[static_cast<size_t>(t)];
          out.assign(static_cast<size_t>(B * d), 0.0f);
          try {
            tables_[static_cast<size_t>(t)]->ForwardInference(cb, out.data());
          } catch (const IndexError& e) {
            throw IndexError(
                "embedding table " + std::to_string(t) + " ('" +
                tables_[static_cast<size_t>(t)]->Name() + "', " +
                std::to_string(tables_[static_cast<size_t>(t)]->num_rows()) +
                " rows): " + e.what());
          }
        }
      },
      /*grain=*/1);
}

void DlrmModel::ForwardTailInference(int64_t batch_size, float* logits,
                                     InferenceScratch& s) const {
  const int64_t B = batch_size;
  std::vector<const float*> features;
  features.reserve(tables_.size() + 1);
  features.push_back(s.bottom_out.data());
  for (int t = 0; t < num_tables(); ++t) {
    features.push_back(s.emb_out[static_cast<size_t>(t)].data());
  }

  s.inter_out.assign(static_cast<size_t>(B * interaction_.out_dim()), 0.0f);
  interaction_.ForwardInference(features, B, s.inter_out.data());
  top_.ForwardInference(s.inter_out.data(), B, logits, s.top_act);
}

const CsrBatch& DlrmModel::SparseFor(const MiniBatch& batch, int t) const {
  if (config_.index_policy == IndexPolicy::kClampToZero) {
    return sanitized_sparse_[static_cast<size_t>(t)];
  }
  return batch.sparse[static_cast<size_t>(t)];
}

double DlrmModel::TrainStep(const MiniBatch& batch, float lr) {
  return TrainStep(batch, OptimizerConfig::Sgd(lr));
}

double DlrmModel::TrainStep(const MiniBatch& batch,
                            const OptimizerConfig& opt) {
  return TrainStepGuarded(batch, opt, StepGuard{}).loss;
}

StepOutcome DlrmModel::TrainStepGuarded(const MiniBatch& batch,
                                        const OptimizerConfig& opt,
                                        const StepGuard& guard) {
  const int64_t B = batch.batch_size();
  const int64_t d = config_.emb_dim;
  StepOutcome out;

  std::vector<float> logits(static_cast<size_t>(B));
  ForwardInternal(batch, logits.data());

  std::vector<float> dlogits(static_cast<size_t>(B));
  out.loss = BceWithLogits(logits, batch.labels, dlogits.data());

  // Loss guards fire before backward: nothing has been mutated yet, so a
  // skip is free.
  if (guard.check_non_finite && !std::isfinite(out.loss)) {
    out.non_finite_loss = true;
    out.applied = false;
    return out;
  }
  if (out.loss > guard.skip_loss_above) {
    out.loss_spike_skipped = true;
    out.applied = false;
    return out;
  }

  // Top MLP.
  std::vector<float> dinter(
      static_cast<size_t>(B * interaction_.out_dim()));
  {
    TTREC_TRACE_SCOPE("dlrm.bwd.top_mlp");
    top_.Backward(dlogits.data(), B, dinter.data());
  }

  // Interaction.
  std::vector<float> dbottom(static_cast<size_t>(B * d));
  std::vector<std::vector<float>> demb(tables_.size());
  std::vector<float*> grads;
  grads.reserve(tables_.size() + 1);
  grads.push_back(dbottom.data());
  for (size_t t = 0; t < tables_.size(); ++t) {
    demb[t].assign(static_cast<size_t>(B * d), 0.0f);
    grads.push_back(demb[t].data());
  }
  {
    TTREC_TRACE_SCOPE("dlrm.bwd.interaction");
    interaction_.Backward(dinter.data(), B, grads);
  }

  // Embeddings and bottom MLP.
  {
    TTREC_TRACE_SCOPE("dlrm.bwd.embedding");
    for (int t = 0; t < num_tables(); ++t) {
      tables_[static_cast<size_t>(t)]->Backward(
          SparseFor(batch, t), demb[static_cast<size_t>(t)].data());
    }
  }
  {
    TTREC_TRACE_SCOPE("dlrm.bwd.bottom_mlp");
    bottom_.Backward(dbottom.data(), B, nullptr);
  }

  // Gradient guards fire after backward but before the optimizer touches
  // any parameter: a poisoned batch is discarded by zeroing the
  // accumulated gradients, leaving parameters and optimizer state intact.
  if (guard.check_non_finite || guard.grad_clip_norm > 0.0f) {
    TTREC_TRACE_SCOPE("dlrm.guards");
    double sq = bottom_.GradSqNorm() + top_.GradSqNorm();
    for (const auto& t : tables_) sq += t->GradSqNorm();
    out.grad_norm = std::sqrt(sq);
    if (guard.check_non_finite && !std::isfinite(out.grad_norm)) {
      out.non_finite_grad = true;
      out.applied = false;
      ZeroGrad();
      return out;
    }
    if (guard.grad_clip_norm > 0.0f &&
        out.grad_norm > static_cast<double>(guard.grad_clip_norm)) {
      const float scale = static_cast<float>(
          static_cast<double>(guard.grad_clip_norm) / out.grad_norm);
      bottom_.ScaleGrads(scale);
      top_.ScaleGrads(scale);
      for (auto& t : tables_) t->ScaleGrads(scale);
      out.clipped = true;
    }
  }

  // Optimizer step.
  TTREC_TRACE_SCOPE("dlrm.optimizer");
  if (opt.kind == OptimizerConfig::Kind::kAdagrad) {
    bottom_.ApplyAdagrad(opt.lr, opt.eps);
    top_.ApplyAdagrad(opt.lr, opt.eps);
  } else {
    bottom_.ApplySgd(opt.lr);
    top_.ApplySgd(opt.lr);
  }
  for (auto& t : tables_) t->ApplyUpdate(opt);
  return out;
}

void DlrmModel::ZeroGrad() {
  bottom_.ZeroGrad();
  top_.ZeroGrad();
  for (auto& t : tables_) t->ZeroGrad();
}

EvalMetrics DlrmModel::Evaluate(const MiniBatch& batch) {
  std::vector<float> logits(static_cast<size_t>(batch.batch_size()));
  ForwardInternal(batch, logits.data());
  EvalMetrics m;
  m.loss = BceWithLogits(logits, batch.labels, nullptr);
  m.accuracy = BinaryAccuracy(logits, batch.labels);
  m.auc = AucRoc(logits, batch.labels);
  return m;
}

EvalMetrics DlrmModel::Evaluate(const std::vector<MiniBatch>& batches) {
  TTREC_CHECK_CONFIG(!batches.empty(), "Evaluate: no batches");
  EvalMetrics acc;
  acc.auc = 0.0;
  for (const MiniBatch& b : batches) {
    const EvalMetrics m = Evaluate(b);
    acc.loss += m.loss;
    acc.accuracy += m.accuracy;
    acc.auc += m.auc;
  }
  const double n = static_cast<double>(batches.size());
  acc.loss /= n;
  acc.accuracy /= n;
  acc.auc /= n;
  return acc;
}

namespace {
constexpr uint32_t kCheckpointMagic = 0x4D524C44;  // "DLRM"
constexpr uint32_t kCheckpointVersion = 1;
}  // namespace

void DlrmModel::SaveState(BinaryWriter& w) const {
  w.WriteI64(config_.num_dense);
  w.WriteI64(config_.emb_dim);
  w.WriteI64(num_tables());
  bottom_.SaveState(w);
  top_.SaveState(w);
  for (const auto& t : tables_) {
    w.WriteString(t->Name());
    t->SaveState(w);
  }
}

void DlrmModel::LoadState(BinaryReader& r) {
  TTREC_CHECK_CONFIG(r.ReadI64() == config_.num_dense,
                     "LoadCheckpoint: num_dense mismatch");
  TTREC_CHECK_CONFIG(r.ReadI64() == config_.emb_dim,
                     "LoadCheckpoint: emb_dim mismatch");
  TTREC_CHECK_CONFIG(r.ReadI64() == num_tables(),
                     "LoadCheckpoint: table count mismatch");
  bottom_.LoadState(r);
  top_.LoadState(r);
  for (auto& t : tables_) {
    const std::string name = r.ReadString();
    TTREC_CHECK_CONFIG(name == t->Name(), "LoadCheckpoint: table type '",
                       name, "' does not match model's '", t->Name(), "'");
    t->LoadState(r);
  }
}

void DlrmModel::SaveOptState(BinaryWriter& w) const {
  bottom_.SaveOptState(w);
  top_.SaveOptState(w);
  for (const auto& t : tables_) t->SaveOptState(w);
}

void DlrmModel::LoadOptState(BinaryReader& r) {
  bottom_.LoadOptState(r);
  top_.LoadOptState(r);
  for (auto& t : tables_) t->LoadOptState(r);
}

void DlrmModel::SaveCheckpoint(std::ostream& os) const {
  BinaryWriter w(os);
  w.WriteU32(kCheckpointMagic);
  w.WriteU32(kCheckpointVersion);
  SaveState(w);
  w.Finish();
}

void DlrmModel::LoadCheckpoint(std::istream& is) {
  BinaryReader r(is);
  TTREC_CHECK(r.ReadU32() == kCheckpointMagic,
              "LoadCheckpoint: bad magic (not a DLRM checkpoint)");
  const uint32_t version = r.ReadU32();
  TTREC_CHECK(version == kCheckpointVersion,
              "LoadCheckpoint: unsupported version ", version);
  LoadState(r);
  r.Finish();
}

void DlrmModel::SaveCheckpointToFile(const std::string& path) const {
  AtomicWriteFile(path, [this](std::ostream& os) {
    SaveCheckpoint(os);
    os.flush();
    TTREC_CHECK(os.good(), "SaveCheckpointToFile: write failed");
  });
}

void DlrmModel::LoadCheckpointFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  TTREC_CHECK(is.is_open(), "LoadCheckpointFromFile: cannot open ", path);
  LoadCheckpoint(is);
}

void DlrmModel::ReplaceTable(int t, std::unique_ptr<EmbeddingOp> op) {
  TTREC_CHECK_INDEX(t >= 0 && t < num_tables(), "ReplaceTable: index ", t,
                    " out of range");
  TTREC_CHECK_CONFIG(op != nullptr, "ReplaceTable: null operator");
  TTREC_CHECK_CONFIG(op->emb_dim() == config_.emb_dim,
                     "ReplaceTable: emb_dim mismatch");
  TTREC_CHECK_CONFIG(
      op->num_rows() == tables_[static_cast<size_t>(t)]->num_rows(),
      "ReplaceTable: num_rows mismatch (", op->num_rows(), " vs ",
      tables_[static_cast<size_t>(t)]->num_rows(), ")");
  tables_[static_cast<size_t>(t)] = std::move(op);
}

int64_t DlrmModel::EmbeddingMemoryBytes() const {
  int64_t total = 0;
  for (const auto& t : tables_) total += t->MemoryBytes();
  return total;
}

std::unique_ptr<DlrmModel> MakeBaselineDlrm(const DlrmConfig& config,
                                            const DatasetSpec& spec,
                                            Rng& rng) {
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.reserve(spec.table_rows.size());
  for (int64_t rows : spec.table_rows) {
    tables.push_back(std::make_unique<DenseEmbeddingBag>(
        rows, config.emb_dim, PoolingMode::kSum,
        DenseEmbeddingInit::UniformScaled(), rng));
  }
  return std::make_unique<DlrmModel>(config, std::move(tables), rng);
}

}  // namespace ttrec
