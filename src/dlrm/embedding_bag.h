// Uncompressed EmbeddingBag — the paper's baseline (PyTorch EmbeddingBag
// semantics: gather rows, pool per bag with optional per-sample weights).
//
// Gradients are kept *sparse* (row -> dense gradient vector): production
// tables have tens of millions of rows and a dense gradient buffer would
// defeat the purpose of the memory comparison.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dlrm/embedding_op.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace ttrec {

/// Weight initialization for the dense table — parameterized so the Table 1
/// study (uniform vs assorted Gaussians) is expressible.
struct DenseEmbeddingInit {
  enum class Kind : uint8_t {
    kUniformScaled,  // U(-1/sqrt(M), 1/sqrt(M)) — the DLRM default
    kGaussian,       // N(0, sigma2)
  };
  Kind kind = Kind::kUniformScaled;
  double sigma2 = 1.0;  // only for kGaussian

  static DenseEmbeddingInit UniformScaled() { return {}; }
  static DenseEmbeddingInit Gaussian(double sigma2) {
    return {Kind::kGaussian, sigma2};
  }
  /// N(0, 1/(3 * num_rows)) — the KL-optimal Gaussian match of the scaled
  /// uniform (paper §3.2).
  static DenseEmbeddingInit MatchedGaussian(int64_t num_rows);
};

class DenseEmbeddingBag : public EmbeddingOp {
 public:
  DenseEmbeddingBag(int64_t num_rows, int64_t emb_dim, PoolingMode pooling,
                    DenseEmbeddingInit init, Rng& rng);

  /// Adopts an existing table (e.g. for tests or cache comparisons).
  DenseEmbeddingBag(Tensor table, PoolingMode pooling);

  void Forward(const CsrBatch& batch, float* output) override;
  /// The dense gather/pool has no forward side effects, so the serving
  /// path is the same loop, const. Safe for concurrent readers as long as
  /// no thread mutates the table (ApplySgd/ApplyUpdate/LoadState).
  void ForwardInference(const CsrBatch& batch, float* output) const override;
  /// Same pooling loop as ForwardInference with the row data taken from
  /// `rows` (lookup-ordered) instead of the table — bitwise identical, so
  /// the shard router can pool remotely-fetched rows (see EmbeddingOp).
  void PoolPrefetchedRows(const CsrBatch& batch, const float* rows,
                          float* output) const override;
  void Backward(const CsrBatch& batch, const float* grad_output) override;
  void ApplySgd(float lr) override;

  /// Row-wise Adagrad (FBGEMM-style): one accumulator per row updated with
  /// the mean squared gradient of that row; the whole row is scaled by
  /// 1 / (sqrt(acc) + eps). O(1) extra memory per row.
  void ApplyUpdate(const OptimizerConfig& opt) override;

  void SaveState(BinaryWriter& w) const override;
  void LoadState(BinaryReader& r) override;
  void SaveOptState(BinaryWriter& w) const override;
  void LoadOptState(BinaryReader& r) override;

  void ZeroGrad() override { grads_.clear(); }
  double GradSqNorm() const override;
  void ScaleGrads(float scale) override;

  int64_t num_rows() const override { return table_.dim(0); }
  int64_t emb_dim() const override { return table_.dim(1); }
  int64_t MemoryBytes() const override {
    return table_.numel() * static_cast<int64_t>(sizeof(float));
  }
  void CollectStats(obs::MetricRegistry& reg) const override {
    EmbeddingOp::CollectStats(reg);
    stats_publisher().Gauge(reg, "dense.rows",
                            static_cast<double>(num_rows()));
    stats_publisher().Gauge(reg, "dense.grad_rows_pending",
                            static_cast<double>(grads_.size()));
  }
  std::string Name() const override { return "dense_embedding_bag"; }

  Tensor& table() { return table_; }
  const Tensor& table() const { return table_; }

  /// Touched-row gradients accumulated since the last ApplySgd.
  const std::unordered_map<int64_t, std::vector<float>>& sparse_grads() const {
    return grads_;
  }

 private:
  Tensor table_;  // num_rows x emb_dim
  PoolingMode pooling_;
  std::unordered_map<int64_t, std::vector<float>> grads_;
  std::vector<float> rowwise_adagrad_;  // lazily sized num_rows
};

}  // namespace ttrec
