#include "dlrm/interaction.h"

#include <cstring>

#include "tensor/check.h"

namespace ttrec {

DotInteraction::DotInteraction(int num_features, int64_t dim)
    : num_features_(num_features), dim_(dim) {
  TTREC_CHECK_CONFIG(num_features >= 1, "DotInteraction: need >= 1 feature");
  TTREC_CHECK_CONFIG(dim >= 1, "DotInteraction: dim must be positive");
}

void DotInteraction::Forward(const std::vector<const float*>& features,
                             int64_t batch, float* out) {
  TTREC_CHECK_SHAPE(static_cast<int>(features.size()) == num_features_,
                    "DotInteraction: expected ", num_features_,
                    " feature blocks, got ", features.size());
  const int F = num_features_;
  const int64_t d = dim_;
  cached_batch_ = batch;
  cached_.resize(static_cast<size_t>(batch * F * d));
  for (int f = 0; f < F; ++f) {
    TTREC_CHECK_INDEX(features[static_cast<size_t>(f)] != nullptr,
                      "DotInteraction: null feature block ", f);
    for (int64_t b = 0; b < batch; ++b) {
      std::memcpy(cached_.data() + (b * F + f) * d,
                  features[static_cast<size_t>(f)] + b * d,
                  static_cast<size_t>(d) * sizeof(float));
    }
  }

  const int64_t od = out_dim();
  for (int64_t b = 0; b < batch; ++b) {
    float* ob = out + b * od;
    const float* fb = cached_.data() + b * F * d;
    // Leading copy of z_0.
    std::memcpy(ob, fb, static_cast<size_t>(d) * sizeof(float));
    int64_t p = d;
    for (int i = 0; i < F; ++i) {
      const float* zi = fb + i * d;
      for (int j = i + 1; j < F; ++j) {
        const float* zj = fb + j * d;
        float dot = 0.0f;
        for (int64_t k = 0; k < d; ++k) dot += zi[k] * zj[k];
        ob[p++] = dot;
      }
    }
  }
}

void DotInteraction::ForwardInference(
    const std::vector<const float*>& features, int64_t batch,
    float* out) const {
  TTREC_CHECK_SHAPE(static_cast<int>(features.size()) == num_features_,
                    "DotInteraction: expected ", num_features_,
                    " feature blocks, got ", features.size());
  const int F = num_features_;
  const int64_t d = dim_;
  for (int f = 0; f < F; ++f) {
    TTREC_CHECK_INDEX(features[static_cast<size_t>(f)] != nullptr,
                      "DotInteraction: null feature block ", f);
  }
  const int64_t od = out_dim();
  for (int64_t b = 0; b < batch; ++b) {
    float* ob = out + b * od;
    // Leading copy of z_0, then the upper-triangle dots — identical
    // accumulation order to Forward, just read straight from the feature
    // blocks instead of the gathered cache.
    std::memcpy(ob, features[0] + b * d, static_cast<size_t>(d) * sizeof(float));
    int64_t p = d;
    for (int i = 0; i < F; ++i) {
      const float* zi = features[static_cast<size_t>(i)] + b * d;
      for (int j = i + 1; j < F; ++j) {
        const float* zj = features[static_cast<size_t>(j)] + b * d;
        float dot = 0.0f;
        for (int64_t k = 0; k < d; ++k) dot += zi[k] * zj[k];
        ob[p++] = dot;
      }
    }
  }
}

void DotInteraction::Backward(const float* grad_out, int64_t batch,
                              const std::vector<float*>& grads) {
  TTREC_CHECK_SHAPE(static_cast<int>(grads.size()) == num_features_,
                    "DotInteraction: expected ", num_features_,
                    " gradient blocks");
  TTREC_CHECK(batch == cached_batch_,
              "Backward batch size does not match the preceding Forward");
  const int F = num_features_;
  const int64_t d = dim_;
  const int64_t od = out_dim();

  for (int f = 0; f < F; ++f) {
    TTREC_CHECK_INDEX(grads[static_cast<size_t>(f)] != nullptr,
                      "DotInteraction: null gradient block ", f);
    std::memset(grads[static_cast<size_t>(f)], 0,
                static_cast<size_t>(batch * d) * sizeof(float));
  }

  for (int64_t b = 0; b < batch; ++b) {
    const float* gb = grad_out + b * od;
    const float* fb = cached_.data() + b * F * d;
    // d z_0 gets the pass-through part.
    for (int64_t k = 0; k < d; ++k) grads[0][b * d + k] += gb[k];
    int64_t p = d;
    for (int i = 0; i < F; ++i) {
      const float* zi = fb + i * d;
      for (int j = i + 1; j < F; ++j) {
        const float* zj = fb + j * d;
        const float g = gb[p++];
        float* gi = grads[static_cast<size_t>(i)] + b * d;
        float* gj = grads[static_cast<size_t>(j)] + b * d;
        for (int64_t k = 0; k < d; ++k) {
          gi[k] += g * zj[k];
          gj[k] += g * zi[k];
        }
      }
    }
  }
}

}  // namespace ttrec
