// Persistence for TT-compressed embedding tables.
//
// Format: magic "TTRC", version, TtShape, one tensor per core, FNV-1a
// checksum trailer. A 10M x 16 table at rank 32 serializes to ~2 MB — the
// artifact a trainer exports and serving replicas load.
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/serialize.h"
#include "tt/tt_cores.h"

namespace ttrec {

/// Current on-disk format version.
inline constexpr uint32_t kTtCoresFormatVersion = 1;

void SaveTtCores(std::ostream& os, const TtCores& cores);
TtCores LoadTtCores(std::istream& is);

/// Writer-level flavors (no magic/trailer) for embedding TT cores inside a
/// larger artifact, e.g. a DLRM checkpoint.
void WriteTtCores(BinaryWriter& w, const TtCores& cores);
TtCores ReadTtCores(BinaryReader& r);

/// File convenience wrappers; throw TtRecError on I/O failure.
void SaveTtCoresToFile(const std::string& path, const TtCores& cores);
TtCores LoadTtCoresFromFile(const std::string& path);

}  // namespace ttrec
