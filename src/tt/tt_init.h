// TT-core weight initialization (paper §3.2, Algorithm 3).
//
// DLRM embedding tables are initialized Uniform(-1/sqrt(M), 1/sqrt(M)); the
// Gaussian that best approximates that (minimum KL divergence) is
// N(0, 1/(3M)) — the paper's Table 1 derivation. For TT, the *product* of
// the cores must approximate that target distribution. A full-matrix entry
// is a sum of prod(inner ranks) terms, each a product of d core entries, so
// with iid core entries of variance s^2 the entry variance is
// prod(R) * s^(2d); every strategy below solves for s accordingly. The
// strategies differ in the *shape* of the resulting product density:
//
//  - kUniform / kGaussian: straightforward, but the product of d centered
//    variables is sharply spiked at zero (paper Fig. 3 left), a poor match
//    for the near-flat target.
//  - kSampledGaussian (Algorithm 3): core entries are N(0,1) *resampled
//    while |x| <= 2*, removing near-zero mass so the product density
//    approaches N(0, 1/(3M)) (paper Fig. 3 right). We scale by the exact
//    truncated-tail standard deviation; the paper's printed line 6 has a
//    typo (divides where it must multiply and omits the rank factor) — see
//    DESIGN.md §4.3.
#pragma once

#include <string>

#include "tensor/random.h"
#include "tt/tt_cores.h"

namespace ttrec {

enum class TtInit : uint8_t {
  kUniform,          // iid uniform core entries
  kGaussian,         // iid normal core entries
  kSampledGaussian,  // Algorithm 3: tail-sampled normal core entries
};

const char* TtInitName(TtInit init);

/// Parses "uniform" / "gaussian" / "sampled_gaussian".
TtInit TtInitFromName(const std::string& name);

/// Initializes all cores so the materialized table entries have variance
/// target_sigma2 (default: the DLRM-matching 1/(3 * num_rows)).
/// `tail_threshold` only affects kSampledGaussian.
void InitializeTtCores(TtCores& cores, TtInit init, Rng& rng,
                       double tail_threshold = 2.0);

/// Same, with an explicit target variance for the materialized entries.
void InitializeTtCoresWithTarget(TtCores& cores, TtInit init, Rng& rng,
                                 double target_sigma2,
                                 double tail_threshold = 2.0);

/// The per-core entry stddev `s` solving prod(R) * s^(2d) == target_sigma2.
double PerCoreStddev(const TtShape& shape, double target_sigma2);

}  // namespace ttrec
