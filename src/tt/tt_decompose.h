// TT-SVD: decompose an existing (e.g. pre-trained) embedding table into TT
// cores (Oseledets 2011, adapted to the paper's matrix-TT layout of Eq. 2).
//
// TT-Rec trains cores directly, so this path is not on the training fast
// path; it exists to (a) import pre-trained uncompressed tables, (b) build
// the low-rank approximation error sweeps in `examples/compress_table`, and
// (c) anchor correctness: with unclamped ranks TT-SVD reconstructs the
// input exactly, which the property tests exploit.
#pragma once

#include "tensor/tensor.h"
#include "tt/tt_cores.h"
#include "tt/tt_shapes.h"

namespace ttrec {

/// Decomposes `table` (num_rows x emb_dim, matching shape.num_rows /
/// shape.emb_dim) into TT cores. Requested ranks are clamped to the maximum
/// achievable at each unfolding; the returned cores carry the (possibly
/// reduced) actual ranks. Rows beyond num_rows implied by the row-factor
/// product are treated as zero padding.
TtCores TtDecompose(const Tensor& table, const TtShape& shape);

/// Relative Frobenius reconstruction error ||W - TT(W)||_F / ||W||_F over
/// the logical num_rows x emb_dim region.
double TtReconstructionError(const Tensor& table, const TtCores& cores);

}  // namespace ttrec
