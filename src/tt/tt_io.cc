#include "tt/tt_io.h"

#include <fstream>

#include "tensor/atomic_file.h"
#include "tensor/serialize.h"

#include "tensor/check.h"

namespace ttrec {

namespace {
constexpr uint32_t kMagic = 0x43525454;  // "TTRC" little-endian
}

void WriteTtCores(BinaryWriter& w, const TtCores& cores) {
  const TtShape& s = cores.shape();
  w.WriteI64(s.num_rows);
  w.WriteI64(s.emb_dim);
  w.WriteI64Vec(s.row_factors);
  w.WriteI64Vec(s.col_factors);
  w.WriteI64Vec(s.ranks);
  for (int k = 0; k < cores.num_cores(); ++k) {
    SaveTensor(w, cores.core(k));
  }
}

TtCores ReadTtCores(BinaryReader& r) {
  TtShape shape;
  shape.num_rows = r.ReadI64();
  shape.emb_dim = r.ReadI64();
  shape.row_factors = r.ReadI64Vec();
  shape.col_factors = r.ReadI64Vec();
  shape.ranks = r.ReadI64Vec();
  shape.Validate();
  TtCores cores(shape);
  for (int k = 0; k < cores.num_cores(); ++k) {
    Tensor t = LoadTensor(r);
    TTREC_CHECK_SHAPE(t.shape() == cores.core(k).shape(),
                      "LoadTtCores: core ", k, " shape mismatch");
    cores.core(k) = std::move(t);
  }
  return cores;
}

void SaveTtCores(std::ostream& os, const TtCores& cores) {
  BinaryWriter w(os);
  w.WriteU32(kMagic);
  w.WriteU32(kTtCoresFormatVersion);
  WriteTtCores(w, cores);
  w.Finish();
}

TtCores LoadTtCores(std::istream& is) {
  BinaryReader r(is);
  TTREC_CHECK(r.ReadU32() == kMagic,
              "LoadTtCores: bad magic (not a TT-cores file)");
  const uint32_t version = r.ReadU32();
  TTREC_CHECK(version == kTtCoresFormatVersion,
              "LoadTtCores: unsupported format version ", version);
  TtCores cores = ReadTtCores(r);
  r.Finish();
  return cores;
}

void SaveTtCoresToFile(const std::string& path, const TtCores& cores) {
  // Atomic write-to-temp + fsync + rename: a crash or full disk mid-save
  // can never leave a torn file at `path`.
  AtomicWriteFile(path, [&](std::ostream& os) {
    SaveTtCores(os, cores);
    os.flush();
    TTREC_CHECK(os.good() && !os.fail(), "SaveTtCoresToFile: write to ", path,
                " failed");
  });
}

TtCores LoadTtCoresFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  TTREC_CHECK(is.is_open(), "LoadTtCoresFromFile: cannot open ", path);
  return LoadTtCores(is);
}

}  // namespace ttrec
