#include "tt/tt_embedding.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "tensor/batched_gemm.h"
#include "tensor/check.h"
#include "tensor/parallel.h"

namespace ttrec {

namespace {

/// Bag id for every lookup, from the CSR offsets.
std::vector<int64_t> LookupBags(const CsrBatch& batch) {
  std::vector<int64_t> bags(static_cast<size_t>(batch.num_lookups()));
  for (int64_t b = 0; b < batch.num_bags(); ++b) {
    for (int64_t l = batch.offsets[static_cast<size_t>(b)];
         l < batch.offsets[static_cast<size_t>(b) + 1]; ++l) {
      bags[static_cast<size_t>(l)] = b;
    }
  }
  return bags;
}

/// Effective per-lookup weight: alpha (Eq. 6) combined with mean pooling.
std::vector<float> EffectiveWeights(const CsrBatch& batch,
                                    PoolingMode pooling,
                                    std::span<const int64_t> bags) {
  std::vector<float> w(static_cast<size_t>(batch.num_lookups()), 1.0f);
  if (!batch.weights.empty()) {
    std::copy(batch.weights.begin(), batch.weights.end(), w.begin());
  }
  if (pooling == PoolingMode::kMean) {
    for (int64_t l = 0; l < batch.num_lookups(); ++l) {
      const int64_t b = bags[static_cast<size_t>(l)];
      const int64_t size = batch.offsets[static_cast<size_t>(b) + 1] -
                           batch.offsets[static_cast<size_t>(b)];
      if (size > 0) w[static_cast<size_t>(l)] /= static_cast<float>(size);
    }
  }
  return w;
}

}  // namespace

struct TtEmbeddingBag::BlockBuffers {
  // inter[c] holds the stage-c outputs for the block, c = 1..d-2 (the final
  // stage writes to the caller's row buffer). Strides in floats.
  std::vector<std::vector<float>> inter;
  std::vector<int64_t> digits;  // [l * d + c]
  std::vector<const float*> a_ptrs;
  std::vector<const float*> b_ptrs;
  std::vector<float*> c_ptrs;
  // Backward-only scratch.
  std::vector<float> d_cur;
  std::vector<float> d_next;
  std::vector<float> slice_grads;
  // Dedup scratch (config.deduplicate).
  std::vector<int64_t> unique;
  std::vector<int32_t> lookup_to_unique;
  std::vector<float> unique_rows;
  std::unordered_map<int64_t, int32_t> dedup_map;
};

TtEmbeddingBag::TtEmbeddingBag(TtEmbeddingConfig config, TtCores cores)
    : config_(std::move(config)), cores_(std::move(cores)) {
  TTREC_CHECK_CONFIG(config_.block_size >= 1,
                     "block_size must be >= 1, got ", config_.block_size);
  TTREC_CHECK_CONFIG(!(config_.deduplicate && config_.stash_intermediates),
                     "deduplicate and stash_intermediates are mutually "
                     "exclusive (the stash layout is per-lookup)");
  const TtShape& s = cores_.shape();
  const int d = s.num_cores();
  prodn_.resize(static_cast<size_t>(d));
  int64_t prod = 1;
  for (int k = 0; k < d; ++k) {
    prod *= s.col_factors[static_cast<size_t>(k)];
    prodn_[static_cast<size_t>(k)] = prod;
  }
  // FLOP accounting (multiply+add = 2 flops) for Figures 8/11.
  for (int c = 1; c < d; ++c) {
    const int64_t m = prodn_[static_cast<size_t>(c - 1)];
    const int64_t kk = s.ranks[static_cast<size_t>(c)];
    const int64_t nn = cores_.SliceCols(c);
    fwd_flops_per_lookup_ += 2 * m * kk * nn;
    // Backward: slice-grad GEMM + propagation GEMM, same volumes.
    bwd_flops_per_lookup_ += 4 * m * kk * nn;
  }
  if (!config_.stash_intermediates) {
    bwd_flops_per_lookup_ += fwd_flops_per_lookup_;  // recompute cost
  }
}

TtEmbeddingBag::TtEmbeddingBag(TtEmbeddingConfig config, TtInit init, Rng& rng)
    : TtEmbeddingBag(config, TtCores(config.shape)) {
  InitializeTtCores(cores_, init, rng);
}

void TtEmbeddingBag::EnsureGrads() {
  if (!grads_.empty()) return;
  const int d = cores_.num_cores();
  grads_.reserve(static_cast<size_t>(d));
  touched_flags_.resize(static_cast<size_t>(d));
  touched_slices_.resize(static_cast<size_t>(d));
  for (int k = 0; k < d; ++k) {
    grads_.emplace_back(cores_.core(k).shape());
    touched_flags_[static_cast<size_t>(k)].assign(
        static_cast<size_t>(cores_.core(k).dim(0)), 0);
  }
}

void TtEmbeddingBag::MarkTouched(int k, int64_t ik) {
  auto& flags = touched_flags_[static_cast<size_t>(k)];
  if (!flags[static_cast<size_t>(ik)]) {
    flags[static_cast<size_t>(ik)] = 1;
    touched_slices_[static_cast<size_t>(k)].push_back(ik);
  }
}

const Tensor& TtEmbeddingBag::core_grad(int k) const {
  TTREC_CHECK_INDEX(k >= 0 && k < static_cast<int>(grads_.size()),
                    "core_grad: no gradient for core ", k,
                    " (call Backward first)");
  return grads_[static_cast<size_t>(k)];
}

void TtEmbeddingBag::ZeroGrad() {
  for (int k = 0; k < static_cast<int>(grads_.size()); ++k) {
    const int64_t slice_size = cores_.SliceSize(k);
    Tensor& grad = grads_[static_cast<size_t>(k)];
    auto& flags = touched_flags_[static_cast<size_t>(k)];
    for (int64_t ik : touched_slices_[static_cast<size_t>(k)]) {
      float* g = grad.data() + ik * slice_size;
      std::fill(g, g + slice_size, 0.0f);
      flags[static_cast<size_t>(ik)] = 0;
    }
    touched_slices_[static_cast<size_t>(k)].clear();
  }
}

double TtEmbeddingBag::GradSqNorm() const {
  double sq = 0.0;
  for (int k = 0; k < static_cast<int>(grads_.size()); ++k) {
    const int64_t slice_size = cores_.SliceSize(k);
    const Tensor& grad = grads_[static_cast<size_t>(k)];
    for (int64_t ik : touched_slices_[static_cast<size_t>(k)]) {
      const float* g = grad.data() + ik * slice_size;
      for (int64_t j = 0; j < slice_size; ++j) {
        sq += static_cast<double>(g[j]) * g[j];
      }
    }
  }
  return sq;
}

void TtEmbeddingBag::ScaleGrads(float scale) {
  for (int k = 0; k < static_cast<int>(grads_.size()); ++k) {
    const int64_t slice_size = cores_.SliceSize(k);
    Tensor& grad = grads_[static_cast<size_t>(k)];
    for (int64_t ik : touched_slices_[static_cast<size_t>(k)]) {
      float* g = grad.data() + ik * slice_size;
      for (int64_t j = 0; j < slice_size; ++j) g[j] *= scale;
    }
  }
}

void TtEmbeddingBag::SaveOptState(BinaryWriter& w) const {
  w.WriteU32(adagrad_state_.empty() ? 0u : 1u);
  for (const Tensor& t : adagrad_state_) SaveTensor(w, t);
}

void TtEmbeddingBag::LoadOptState(BinaryReader& r) {
  const uint32_t present = r.ReadU32();
  if (present == 0) {
    adagrad_state_.clear();
    return;
  }
  TTREC_CHECK_CONFIG(present == 1, "TtEmbeddingBag::LoadOptState: bad marker");
  std::vector<Tensor> state;
  state.reserve(static_cast<size_t>(cores_.num_cores()));
  for (int k = 0; k < cores_.num_cores(); ++k) {
    Tensor t = LoadTensor(r);
    TTREC_CHECK_SHAPE(t.shape() == cores_.core(k).shape(),
                      "TtEmbeddingBag::LoadOptState: accumulator ", k,
                      " shape mismatch");
    state.push_back(std::move(t));
  }
  adagrad_state_ = std::move(state);
}

int64_t TtEmbeddingBag::WorkspaceBytes() const {
  const int d = cores_.num_cores();
  int64_t floats = 0;
  for (int c = 1; c <= d - 2; ++c) {
    floats += config_.block_size * prodn_[static_cast<size_t>(c)] *
              cores_.shape().ranks[static_cast<size_t>(c) + 1];
  }
  floats += config_.block_size * emb_dim();  // row buffer
  return floats * static_cast<int64_t>(sizeof(float)) +
         3 * config_.block_size * static_cast<int64_t>(sizeof(void*));
}

void TtEmbeddingBag::BuildBlockDedup(std::span<const int64_t> indices,
                                     int64_t begin, int64_t end,
                                     BlockBuffers& buf) {
  buf.unique.clear();
  buf.dedup_map.clear();
  buf.lookup_to_unique.resize(static_cast<size_t>(end - begin));
  for (int64_t l = begin; l < end; ++l) {
    const int64_t row = indices[l];
    auto [it, inserted] = buf.dedup_map.try_emplace(
        row, static_cast<int32_t>(buf.unique.size()));
    if (inserted) buf.unique.push_back(row);
    buf.lookup_to_unique[static_cast<size_t>(l - begin)] = it->second;
  }
}

void TtEmbeddingBag::ForwardBlock(std::span<const int64_t> indices,
                                  int64_t begin, int64_t end, float* rows_out,
                                  BlockBuffers& buf, Stash* stash) const {
  const TtShape& s = cores_.shape();
  const int d = s.num_cores();
  const int64_t L = end - begin;
  const int64_t N = emb_dim();

  buf.digits.resize(static_cast<size_t>(L * d));
  for (int64_t l = 0; l < L; ++l) {
    const std::vector<int64_t> dg = s.RowDigits(indices[begin + l]);
    std::copy(dg.begin(), dg.end(), buf.digits.begin() + l * d);
  }

  buf.inter.resize(static_cast<size_t>(std::max(0, d - 2)) + 1);
  buf.a_ptrs.resize(static_cast<size_t>(L));
  buf.b_ptrs.resize(static_cast<size_t>(L));
  buf.c_ptrs.resize(static_cast<size_t>(L));

  for (int c = 1; c < d; ++c) {
    const int64_t m = prodn_[static_cast<size_t>(c - 1)];
    const int64_t kk = s.ranks[static_cast<size_t>(c)];
    const int64_t nn = cores_.SliceCols(c);
    const int64_t out_stride = m * nn;
    const bool last_stage = (c == d - 1);
    const int64_t prev_stride =
        (c >= 2) ? prodn_[static_cast<size_t>(c - 1)] *
                       s.ranks[static_cast<size_t>(c)]
                 : 0;

    float* out_base = nullptr;
    if (last_stage) {
      TTREC_CHECK_INTERNAL(out_stride == N, "final stage must produce rows");
      out_base = rows_out;
    } else {
      auto& ib = buf.inter[static_cast<size_t>(c)];
      ib.resize(static_cast<size_t>(L * out_stride));
      out_base = ib.data();
    }

    for (int64_t l = 0; l < L; ++l) {
      const int64_t* dg = buf.digits.data() + l * d;
      buf.a_ptrs[static_cast<size_t>(l)] =
          (c == 1) ? cores_.Slice(0, dg[0])
                   : buf.inter[static_cast<size_t>(c - 1)].data() +
                         l * prev_stride;
      buf.b_ptrs[static_cast<size_t>(l)] = cores_.Slice(c, dg[c]);
      buf.c_ptrs[static_cast<size_t>(l)] = out_base + l * out_stride;
    }
    BatchedGemmShape shape;
    shape.m = m;
    shape.n = nn;
    shape.k = kk;
    BatchedGemm(shape, buf.a_ptrs, buf.b_ptrs, buf.c_ptrs);

    if (stash != nullptr && !last_stage) {
      auto& st = stash->stage[static_cast<size_t>(c)];
      std::memcpy(st.data() + begin * out_stride,
                  buf.inter[static_cast<size_t>(c)].data(),
                  static_cast<size_t>(L * out_stride) * sizeof(float));
    }
  }
}

void TtEmbeddingBag::Forward(const CsrBatch& batch, float* output) {
  batch.Validate(num_rows());
  const int d = cores_.num_cores();
  const int64_t N = emb_dim();
  const int64_t n_lookups = batch.num_lookups();
  const int64_t n_bags = batch.num_bags();

  std::fill(output, output + n_bags * N, 0.0f);

  const std::vector<int64_t> bags = LookupBags(batch);
  const std::vector<float> w = EffectiveWeights(batch, config_.pooling, bags);

  stash_.valid = false;
  if (config_.stash_intermediates) {
    stash_.stage.assign(static_cast<size_t>(std::max(0, d - 2)) + 1, {});
    for (int c = 1; c <= d - 2; ++c) {
      const int64_t stride = prodn_[static_cast<size_t>(c)] *
                             cores_.shape().ranks[static_cast<size_t>(c) + 1];
      stash_.stage[static_cast<size_t>(c)].resize(
          static_cast<size_t>(n_lookups * stride));
    }
  }

  BlockBuffers buf;
  std::vector<float> rows(
      static_cast<size_t>(std::min(config_.block_size, std::max<int64_t>(
                                                           n_lookups, 1)) *
                          N));
  for (int64_t begin = 0; begin < n_lookups; begin += config_.block_size) {
    const int64_t end = std::min(n_lookups, begin + config_.block_size);
    if (config_.deduplicate) {
      // Run the TT chain once per distinct row in the block; pooling reads
      // through the lookup -> unique mapping.
      BuildBlockDedup(batch.indices, begin, end, buf);
      const int64_t num_unique = static_cast<int64_t>(buf.unique.size());
      buf.unique_rows.resize(static_cast<size_t>(num_unique * N));
      ForwardBlock(buf.unique, 0, num_unique, buf.unique_rows.data(), buf,
                   /*stash=*/nullptr);
      for (int64_t l = begin; l < end; ++l) {
        const float wl = w[static_cast<size_t>(l)];
        const float* src =
            buf.unique_rows.data() +
            static_cast<int64_t>(
                buf.lookup_to_unique[static_cast<size_t>(l - begin)]) *
                N;
        float* dst = output + bags[static_cast<size_t>(l)] * N;
        for (int64_t j = 0; j < N; ++j) dst[j] += wl * src[j];
      }
      continue;
    }
    ForwardBlock(batch.indices, begin, end, rows.data(), buf,
                 config_.stash_intermediates ? &stash_ : nullptr);
    for (int64_t l = begin; l < end; ++l) {
      const float wl = w[static_cast<size_t>(l)];
      const float* src = rows.data() + (l - begin) * N;
      float* dst = output + bags[static_cast<size_t>(l)] * N;
      for (int64_t j = 0; j < N; ++j) dst[j] += wl * src[j];
    }
  }

  if (config_.stash_intermediates) {
    stash_.valid = true;
    stash_.num_lookups = n_lookups;
  }
  ++stats_.forward_calls;
  stats_.lookups += n_lookups;
  stats_.forward_flops += n_lookups * fwd_flops_per_lookup_;
}

void TtEmbeddingBag::ForwardInference(const CsrBatch& batch,
                                      float* output) const {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();
  const int64_t n_lookups = batch.num_lookups();
  const int64_t n_bags = batch.num_bags();

  std::fill(output, output + n_bags * N, 0.0f);

  const std::vector<int64_t> bags = LookupBags(batch);
  const std::vector<float> w = EffectiveWeights(batch, config_.pooling, bags);

  // Always the per-lookup path (no dedup): each lookup's TT chain is an
  // independent GEMM problem, so pooled outputs are bitwise identical no
  // matter how requests were micro-batched together.
  BlockBuffers buf;
  std::vector<float> rows(
      static_cast<size_t>(std::min(config_.block_size, std::max<int64_t>(
                                                           n_lookups, 1)) *
                          N));
  for (int64_t begin = 0; begin < n_lookups; begin += config_.block_size) {
    const int64_t end = std::min(n_lookups, begin + config_.block_size);
    ForwardBlock(batch.indices, begin, end, rows.data(), buf,
                 /*stash=*/nullptr);
    for (int64_t l = begin; l < end; ++l) {
      const float wl = w[static_cast<size_t>(l)];
      const float* src = rows.data() + (l - begin) * N;
      float* dst = output + bags[static_cast<size_t>(l)] * N;
      for (int64_t j = 0; j < N; ++j) dst[j] += wl * src[j];
    }
  }
}

void TtEmbeddingBag::LookupRows(std::span<const int64_t> indices, float* out) {
  for (int64_t idx : indices) {
    TTREC_CHECK_INDEX(idx >= 0 && idx < num_rows(), "LookupRows: index ", idx,
                      " out of range [0, ", num_rows(), ")");
  }
  const int64_t n = static_cast<int64_t>(indices.size());
  BlockBuffers buf;
  for (int64_t begin = 0; begin < n; begin += config_.block_size) {
    const int64_t end = std::min(n, begin + config_.block_size);
    ForwardBlock(indices, begin, end, out + begin * emb_dim(), buf,
                 /*stash=*/nullptr);
  }
  stats_.lookups += n;
  stats_.forward_flops += n * fwd_flops_per_lookup_;
}

void TtEmbeddingBag::Backward(const CsrBatch& batch,
                              const float* grad_output) {
  batch.Validate(num_rows());
  EnsureGrads();
  const TtShape& s = cores_.shape();
  const int d = cores_.num_cores();
  const int64_t N = emb_dim();
  const int64_t n_lookups = batch.num_lookups();

  const std::vector<int64_t> bags = LookupBags(batch);
  const std::vector<float> w = EffectiveWeights(batch, config_.pooling, bags);

  const bool use_stash = config_.stash_intermediates && stash_.valid &&
                         stash_.num_lookups == n_lookups;

  // Maximum per-lookup size of the propagated gradient D_c and of a slice
  // gradient, across stages.
  // D_c has prodn_[c] * R_{c+1} elements per lookup, for every c in
  // [0, d-1] — c = 0 is the final propagated gradient (the core-0 slice
  // gradient), which can be the largest when d == 2.
  int64_t max_d_stride = N;
  int64_t max_slice = cores_.SliceSize(0);
  for (int c = 0; c < d; ++c) {
    max_d_stride = std::max(
        max_d_stride,
        prodn_[static_cast<size_t>(c)] * s.ranks[static_cast<size_t>(c) + 1]);
    if (c > 0) max_slice = std::max(max_slice, cores_.SliceSize(c));
  }

  BlockBuffers buf;
  for (int64_t begin = 0; begin < n_lookups; begin += config_.block_size) {
    const int64_t end = std::min(n_lookups, begin + config_.block_size);
    const int64_t L = end - begin;

    // `work` = gradient-carrying units in this block: one per lookup, or
    // one per distinct row when deduplicating (gradients are linear in the
    // row, so per-row aggregation is exact).
    int64_t work = L;
    if (config_.deduplicate) {
      BuildBlockDedup(batch.indices, begin, end, buf);
      work = static_cast<int64_t>(buf.unique.size());
      std::vector<float> scratch_rows(static_cast<size_t>(work * N));
      ForwardBlock(buf.unique, 0, work, scratch_rows.data(), buf,
                   /*stash=*/nullptr);
    } else if (use_stash) {
      // Digits are still needed for slice addressing.
      buf.digits.resize(static_cast<size_t>(L * d));
      for (int64_t l = 0; l < L; ++l) {
        const std::vector<int64_t> dg = s.RowDigits(batch.indices[begin + l]);
        std::copy(dg.begin(), dg.end(), buf.digits.begin() + l * d);
      }
    } else {
      // Recompute intermediates (Algorithm 2 line 3). We only need stages
      // 1..d-2; run the forward including the last stage into a scratch row
      // buffer — its cost is small relative to the rest and keeps one code
      // path.
      std::vector<float> scratch_rows(static_cast<size_t>(L * N));
      ForwardBlock(batch.indices, begin, end, scratch_rows.data(), buf,
                   /*stash=*/nullptr);
    }

    // D_{d-1} = w_l * dL/d(bag row), reshaped per unit.
    buf.d_cur.resize(static_cast<size_t>(work * max_d_stride));
    buf.d_next.resize(static_cast<size_t>(work * max_d_stride));
    buf.slice_grads.resize(static_cast<size_t>(work * max_slice));
    if (config_.deduplicate) {
      std::fill(buf.d_cur.begin(),
                buf.d_cur.begin() +
                    static_cast<ptrdiff_t>(work * max_d_stride),
                0.0f);
      for (int64_t l = begin; l < end; ++l) {
        const float wl = w[static_cast<size_t>(l)];
        const float* g = grad_output + bags[static_cast<size_t>(l)] * N;
        float* dcur =
            buf.d_cur.data() +
            static_cast<int64_t>(
                buf.lookup_to_unique[static_cast<size_t>(l - begin)]) *
                max_d_stride;
        for (int64_t j = 0; j < N; ++j) dcur[j] += wl * g[j];
      }
    } else {
      for (int64_t l = begin; l < end; ++l) {
        const float wl = w[static_cast<size_t>(l)];
        const float* g = grad_output + bags[static_cast<size_t>(l)] * N;
        float* dcur = buf.d_cur.data() + (l - begin) * max_d_stride;
        for (int64_t j = 0; j < N; ++j) dcur[j] = wl * g[j];
      }
    }

    buf.a_ptrs.resize(static_cast<size_t>(work));
    buf.b_ptrs.resize(static_cast<size_t>(work));
    buf.c_ptrs.resize(static_cast<size_t>(work));

    for (int c = d - 1; c >= 1; --c) {
      const int64_t m_prev = prodn_[static_cast<size_t>(c - 1)];
      const int64_t rank_c = s.ranks[static_cast<size_t>(c)];
      const int64_t cols_c = cores_.SliceCols(c);
      const int64_t slice_size = rank_c * cols_c;
      const int64_t prev_stride = (c >= 2) ? m_prev * rank_c : 0;

      auto p_prev = [&](int64_t l) -> const float* {
        const int64_t* dg = buf.digits.data() + l * d;
        if (c == 1) return cores_.Slice(0, dg[0]);
        if (use_stash) {
          return stash_.stage[static_cast<size_t>(c - 1)].data() +
                 (begin + l) * prev_stride;
        }
        return buf.inter[static_cast<size_t>(c - 1)].data() + l * prev_stride;
      };

      // Slice gradients: sg = P_{c-1}^T * D_c  (Eq. 4).
      for (int64_t l = 0; l < work; ++l) {
        buf.a_ptrs[static_cast<size_t>(l)] = p_prev(l);
        buf.b_ptrs[static_cast<size_t>(l)] =
            buf.d_cur.data() + l * max_d_stride;
        buf.c_ptrs[static_cast<size_t>(l)] =
            buf.slice_grads.data() + l * max_slice;
      }
      BatchedGemmShape sg_shape;
      sg_shape.ta = Trans::kYes;
      sg_shape.m = rank_c;
      sg_shape.n = cols_c;
      sg_shape.k = m_prev;
      BatchedGemm(sg_shape, buf.a_ptrs, buf.b_ptrs, buf.c_ptrs);

      // Sequential scatter-add into the dense core gradient: deterministic
      // and correct under duplicate indices within the block.
      Tensor& grad_core = grads_[static_cast<size_t>(c)];
      for (int64_t l = 0; l < work; ++l) {
        const int64_t ik = buf.digits[static_cast<size_t>(l * d + c)];
        MarkTouched(c, ik);
        float* dst = grad_core.data() + ik * slice_size;
        const float* src = buf.slice_grads.data() + l * max_slice;
        for (int64_t j = 0; j < slice_size; ++j) dst[j] += src[j];
      }

      // Propagate: D_{c-1} = D_c * slice_c^T  (Eq. 5).
      for (int64_t l = 0; l < work; ++l) {
        const int64_t* dg = buf.digits.data() + l * d;
        buf.a_ptrs[static_cast<size_t>(l)] =
            buf.d_cur.data() + l * max_d_stride;
        buf.b_ptrs[static_cast<size_t>(l)] = cores_.Slice(c, dg[c]);
        buf.c_ptrs[static_cast<size_t>(l)] =
            buf.d_next.data() + l * max_d_stride;
      }
      BatchedGemmShape prop_shape;
      prop_shape.tb = Trans::kYes;
      prop_shape.m = m_prev;
      prop_shape.n = rank_c;
      prop_shape.k = cols_c;
      BatchedGemm(prop_shape, buf.a_ptrs, buf.b_ptrs, buf.c_ptrs);
      buf.d_cur.swap(buf.d_next);
    }

    // After the c == 1 iteration, D_0 is exactly the gradient of the core-0
    // slice of each lookup.
    Tensor& grad_core0 = grads_[0];
    const int64_t slice0 = cores_.SliceSize(0);
    for (int64_t l = 0; l < work; ++l) {
      const int64_t i0 = buf.digits[static_cast<size_t>(l * d)];
      MarkTouched(0, i0);
      float* dst = grad_core0.data() + i0 * slice0;
      const float* src = buf.d_cur.data() + l * max_d_stride;
      for (int64_t j = 0; j < slice0; ++j) dst[j] += src[j];
    }
  }

  ++stats_.backward_calls;
  stats_.backward_flops += n_lookups * bwd_flops_per_lookup_;
}

void TtEmbeddingBag::ApplySgd(float lr) {
  if (grads_.empty()) return;
  // Only slices touched since the last ApplySgd/ZeroGrad carry gradient;
  // update and re-zero exactly those — O(touched) not O(params), which is
  // what keeps the cached hybrid's miss path cheap at high hit rates.
  for (int k = 0; k < cores_.num_cores(); ++k) {
    const int64_t slice_size = cores_.SliceSize(k);
    Tensor& core = cores_.core(k);
    Tensor& grad = grads_[static_cast<size_t>(k)];
    auto& flags = touched_flags_[static_cast<size_t>(k)];
    for (int64_t ik : touched_slices_[static_cast<size_t>(k)]) {
      float* w = core.data() + ik * slice_size;
      float* g = grad.data() + ik * slice_size;
      for (int64_t j = 0; j < slice_size; ++j) {
        w[j] -= lr * g[j];
        g[j] = 0.0f;
      }
      flags[static_cast<size_t>(ik)] = 0;
    }
    touched_slices_[static_cast<size_t>(k)].clear();
  }
  stash_.valid = false;  // cores changed; stashed intermediates are stale
}

void TtEmbeddingBag::ApplyAdagrad(float lr, float eps) {
  if (grads_.empty()) return;
  TTREC_CHECK_CONFIG(eps > 0.0f, "ApplyAdagrad: eps must be positive");
  if (adagrad_state_.empty()) {
    adagrad_state_.reserve(static_cast<size_t>(cores_.num_cores()));
    for (int k = 0; k < cores_.num_cores(); ++k) {
      adagrad_state_.emplace_back(cores_.core(k).shape());
    }
  }
  for (int k = 0; k < cores_.num_cores(); ++k) {
    const int64_t slice_size = cores_.SliceSize(k);
    Tensor& core = cores_.core(k);
    Tensor& grad = grads_[static_cast<size_t>(k)];
    Tensor& state = adagrad_state_[static_cast<size_t>(k)];
    auto& flags = touched_flags_[static_cast<size_t>(k)];
    for (int64_t ik : touched_slices_[static_cast<size_t>(k)]) {
      float* w = core.data() + ik * slice_size;
      float* g = grad.data() + ik * slice_size;
      float* st = state.data() + ik * slice_size;
      for (int64_t j = 0; j < slice_size; ++j) {
        st[j] += g[j] * g[j];
        w[j] -= lr * g[j] / (std::sqrt(st[j]) + eps);
        g[j] = 0.0f;
      }
      flags[static_cast<size_t>(ik)] = 0;
    }
    touched_slices_[static_cast<size_t>(k)].clear();
  }
  stash_.valid = false;
}

}  // namespace ttrec
