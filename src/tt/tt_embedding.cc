#include "tt/tt_embedding.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "obs/trace.h"
#include "tensor/aligned.h"
#include "tensor/batched_gemm.h"
#include "tensor/check.h"
#include "tensor/gemm.h"
#include "tensor/parallel.h"

namespace ttrec {

namespace {

// Blocks are dispatched to the pool in sequential "rounds" of at most
// kRoundBlocksPerThread blocks per worker. Rounds bound the shared row
// buffer (forward) and the number of live block-local gradient accumulators
// (backward) without affecting results: per-bag pooling order and the
// block-order gradient merge are functions of block boundaries only, and
// block boundaries depend only on config.block_size.
constexpr int64_t kRoundBlocksPerThread = 4;

/// Bag id for every lookup, from the CSR offsets.
std::vector<int64_t> LookupBags(const CsrBatch& batch) {
  std::vector<int64_t> bags(static_cast<size_t>(batch.num_lookups()));
  for (int64_t b = 0; b < batch.num_bags(); ++b) {
    for (int64_t l = batch.offsets[static_cast<size_t>(b)];
         l < batch.offsets[static_cast<size_t>(b) + 1]; ++l) {
      bags[static_cast<size_t>(l)] = b;
    }
  }
  return bags;
}

/// Effective per-lookup weight: alpha (Eq. 6) combined with mean pooling.
std::vector<float> EffectiveWeights(const CsrBatch& batch,
                                    PoolingMode pooling,
                                    std::span<const int64_t> bags) {
  std::vector<float> w(static_cast<size_t>(batch.num_lookups()), 1.0f);
  if (!batch.weights.empty()) {
    std::copy(batch.weights.begin(), batch.weights.end(), w.begin());
  }
  if (pooling == PoolingMode::kMean) {
    for (int64_t l = 0; l < batch.num_lookups(); ++l) {
      const int64_t b = bags[static_cast<size_t>(l)];
      const int64_t size = batch.offsets[static_cast<size_t>(b) + 1] -
                           batch.offsets[static_cast<size_t>(b)];
      if (size > 0) w[static_cast<size_t>(l)] /= static_cast<float>(size);
    }
  }
  return w;
}

/// Order-sensitive 64-bit fingerprint of a lookup-index sequence (splitmix64
/// finalizer per element folded FNV-style). Stamps the stash so Backward can
/// prove it is replaying intermediates of THIS batch, not merely one of
/// equal size.
uint64_t HashIndices(std::span<const int64_t> indices) {
  uint64_t h = 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(indices.size());
  for (int64_t v : indices) {
    uint64_t x = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    h = (h ^ x) * 0x100000001b3ull;
  }
  return h;
}

}  // namespace

struct TtEmbeddingBag::BlockBuffers {
  // inter[c] holds the stage-c outputs for the block, c = 1..d-2 (the final
  // stage writes to the caller's row buffer). Strides in floats. All float
  // scratch that feeds GEMM operands is 64-byte aligned (tensor/aligned.h)
  // so the SIMD kernels stream cache-line-clean memory.
  std::vector<AlignedVec<float>> inter;
  std::vector<int64_t> digits;  // [l * d + c]
  std::vector<const float*> a_ptrs;
  std::vector<const float*> b_ptrs;
  std::vector<float*> c_ptrs;
  // Backward-only scratch.
  AlignedVec<float> d_cur;
  AlignedVec<float> d_next;
  AlignedVec<float> slice_grads;
  AlignedVec<float> scratch_rows;  // recompute / dedup-expanded rows
  // Dedup scratch (config.deduplicate).
  std::vector<int64_t> unique;
  std::vector<int32_t> lookup_to_unique;
  AlignedVec<float> unique_rows;
  std::unordered_map<int64_t, int32_t> dedup_map;
};

// Block-local gradient accumulator: per core, a compact first-touch-ordered
// list of slice ids plus their dense gradient rows. Each block task writes
// only its own BlockGrads; the caller merges them into grads_ in block
// order, so the accumulated gradient never depends on the thread count.
struct TtEmbeddingBag::BlockGrads {
  struct PerCore {
    std::vector<int64_t> slices;  // slice ids, first-touch order
    std::unordered_map<int64_t, int32_t> index;
    std::vector<float> data;  // slices.size() * slice_size floats
  };
  std::vector<PerCore> cores;

  float* SliceFor(int k, int64_t ik, int64_t slice_size) {
    PerCore& pc = cores[static_cast<size_t>(k)];
    auto [it, inserted] =
        pc.index.try_emplace(ik, static_cast<int32_t>(pc.slices.size()));
    if (inserted) {
      pc.slices.push_back(ik);
      pc.data.resize(pc.slices.size() * static_cast<size_t>(slice_size), 0.0f);
    }
    return pc.data.data() + static_cast<int64_t>(it->second) * slice_size;
  }
};

TtEmbeddingBag::TtEmbeddingBag(TtEmbeddingConfig config, TtCores cores)
    : config_(std::move(config)), cores_(std::move(cores)) {
  TTREC_CHECK_CONFIG(config_.block_size >= 1,
                     "block_size must be >= 1, got ", config_.block_size);
  TTREC_CHECK_CONFIG(!(config_.deduplicate && config_.stash_intermediates),
                     "deduplicate and stash_intermediates are mutually "
                     "exclusive (the stash layout is per-lookup)");
  const TtShape& s = cores_.shape();
  const int d = s.num_cores();
  prodn_.resize(static_cast<size_t>(d));
  int64_t prod = 1;
  for (int k = 0; k < d; ++k) {
    prod *= s.col_factors[static_cast<size_t>(k)];
    prodn_[static_cast<size_t>(k)] = prod;
  }
  // FLOP accounting (multiply+add = 2 flops) for Figures 8/11.
  for (int c = 1; c < d; ++c) {
    const int64_t m = prodn_[static_cast<size_t>(c - 1)];
    const int64_t kk = s.ranks[static_cast<size_t>(c)];
    const int64_t nn = cores_.SliceCols(c);
    fwd_flops_per_lookup_ += 2 * m * kk * nn;
    // Backward: slice-grad GEMM + propagation GEMM, same volumes.
    bwd_flops_per_lookup_ += 4 * m * kk * nn;
    max_stage_floats_ = std::max(max_stage_floats_, m * nn);
  }
  if (!config_.stash_intermediates) {
    bwd_flops_per_lookup_ += fwd_flops_per_lookup_;  // recompute cost
  }
}

TtEmbeddingBag::TtEmbeddingBag(TtEmbeddingConfig config, TtInit init, Rng& rng)
    : TtEmbeddingBag(config, TtCores(config.shape)) {
  InitializeTtCores(cores_, init, rng);
}

void TtEmbeddingBag::EnsureGrads() {
  if (!grads_.empty()) return;
  const int d = cores_.num_cores();
  grads_.reserve(static_cast<size_t>(d));
  touched_flags_.resize(static_cast<size_t>(d));
  touched_slices_.resize(static_cast<size_t>(d));
  for (int k = 0; k < d; ++k) {
    grads_.emplace_back(cores_.core(k).shape());
    touched_flags_[static_cast<size_t>(k)].assign(
        static_cast<size_t>(cores_.core(k).dim(0)), 0);
  }
}

void TtEmbeddingBag::MarkTouched(int k, int64_t ik) {
  auto& flags = touched_flags_[static_cast<size_t>(k)];
  if (!flags[static_cast<size_t>(ik)]) {
    flags[static_cast<size_t>(ik)] = 1;
    touched_slices_[static_cast<size_t>(k)].push_back(ik);
  }
}

const Tensor& TtEmbeddingBag::core_grad(int k) const {
  TTREC_CHECK_INDEX(k >= 0 && k < static_cast<int>(grads_.size()),
                    "core_grad: no gradient for core ", k,
                    " (call Backward first)");
  return grads_[static_cast<size_t>(k)];
}

void TtEmbeddingBag::ZeroGrad() {
  for (int k = 0; k < static_cast<int>(grads_.size()); ++k) {
    const int64_t slice_size = cores_.SliceSize(k);
    Tensor& grad = grads_[static_cast<size_t>(k)];
    auto& flags = touched_flags_[static_cast<size_t>(k)];
    for (int64_t ik : touched_slices_[static_cast<size_t>(k)]) {
      float* g = grad.data() + ik * slice_size;
      std::fill(g, g + slice_size, 0.0f);
      flags[static_cast<size_t>(ik)] = 0;
    }
    touched_slices_[static_cast<size_t>(k)].clear();
  }
}

double TtEmbeddingBag::GradSqNorm() const {
  double sq = 0.0;
  for (int k = 0; k < static_cast<int>(grads_.size()); ++k) {
    const int64_t slice_size = cores_.SliceSize(k);
    const Tensor& grad = grads_[static_cast<size_t>(k)];
    for (int64_t ik : touched_slices_[static_cast<size_t>(k)]) {
      const float* g = grad.data() + ik * slice_size;
      for (int64_t j = 0; j < slice_size; ++j) {
        sq += static_cast<double>(g[j]) * g[j];
      }
    }
  }
  return sq;
}

void TtEmbeddingBag::ScaleGrads(float scale) {
  for (int k = 0; k < static_cast<int>(grads_.size()); ++k) {
    const int64_t slice_size = cores_.SliceSize(k);
    Tensor& grad = grads_[static_cast<size_t>(k)];
    for (int64_t ik : touched_slices_[static_cast<size_t>(k)]) {
      float* g = grad.data() + ik * slice_size;
      for (int64_t j = 0; j < slice_size; ++j) g[j] *= scale;
    }
  }
}

void TtEmbeddingBag::SaveOptState(BinaryWriter& w) const {
  w.WriteU32(adagrad_state_.empty() ? 0u : 1u);
  for (const Tensor& t : adagrad_state_) SaveTensor(w, t);
}

void TtEmbeddingBag::LoadOptState(BinaryReader& r) {
  const uint32_t present = r.ReadU32();
  if (present == 0) {
    adagrad_state_.clear();
    return;
  }
  TTREC_CHECK_CONFIG(present == 1, "TtEmbeddingBag::LoadOptState: bad marker");
  std::vector<Tensor> state;
  state.reserve(static_cast<size_t>(cores_.num_cores()));
  for (int k = 0; k < cores_.num_cores(); ++k) {
    Tensor t = LoadTensor(r);
    TTREC_CHECK_SHAPE(t.shape() == cores_.core(k).shape(),
                      "TtEmbeddingBag::LoadOptState: accumulator ", k,
                      " shape mismatch");
    state.push_back(std::move(t));
  }
  adagrad_state_ = std::move(state);
}

int64_t TtEmbeddingBag::WorkspaceBytes(int num_threads) const {
  const TtShape& s = cores_.shape();
  const int d = cores_.num_cores();
  const int64_t B = config_.block_size;
  const int64_t N = emb_dim();
  const int64_t threads =
      num_threads > 0 ? num_threads : ThreadPool::Global().num_threads();

  // Largest propagated gradient D_c and slice gradient across stages
  // (same derivation as Backward).
  int64_t max_d_stride = N;
  int64_t max_slice = cores_.SliceSize(0);
  for (int c = 0; c < d; ++c) {
    max_d_stride = std::max(
        max_d_stride,
        prodn_[static_cast<size_t>(c)] * s.ranks[static_cast<size_t>(c) + 1]);
    if (c > 0) max_slice = std::max(max_slice, cores_.SliceSize(c));
  }

  // --- Per concurrently running block task (one BlockBuffers each). ---
  // Every float buffer is a separate 64-byte-aligned allocation now, so
  // each one is accounted rounded up to the allocation granularity instead
  // of assuming buffers pack densely.
  constexpr int64_t kF = static_cast<int64_t>(sizeof(float));
  int64_t per_block_bytes = 0;
  // Forward stage intermediates, stages 1..d-2 (one allocation per stage).
  for (int c = 1; c <= d - 2; ++c) {
    per_block_bytes += AlignedBytes(B * prodn_[static_cast<size_t>(c)] *
                                    s.ranks[static_cast<size_t>(c) + 1] * kF);
  }
  // Backward: D_c ping-pong buffers, per-unit slice gradients, and the
  // recompute (or dedup-expanded) row scratch.
  per_block_bytes += 2 * AlignedBytes(B * max_d_stride * kF) +
                     AlignedBytes(B * max_slice * kF) +
                     AlignedBytes(B * N * kF);
  // Block-local gradient accumulators: at most min(B, m_k) distinct slices
  // per core can be touched by one block.
  for (int k = 0; k < d; ++k) {
    per_block_bytes += AlignedBytes(
        std::min(B, s.row_factors[static_cast<size_t>(k)]) *
        cores_.SliceSize(k) * kF);
  }
  per_block_bytes +=
      B * d * static_cast<int64_t>(sizeof(int64_t)) +  // digits
      3 * B * static_cast<int64_t>(sizeof(void*));     // a/b/c pointer arrays
  if (config_.deduplicate) {
    // unique ids + lookup->unique mapping + expanded unique rows + hash map
    // (~3 words per entry at typical open-addressing load factors).
    per_block_bytes += B * static_cast<int64_t>(sizeof(int64_t)) +
                       B * static_cast<int64_t>(sizeof(int32_t)) +
                       AlignedBytes(B * N * kF) +
                       3 * B * static_cast<int64_t>(sizeof(void*));
  }
  if (config_.fuse_lookup) {
    // Fused chain scratch per task: ping/pong stage buffers, the current
    // row, and the double-buffered digit decode.
    per_block_bytes += 2 * AlignedBytes(max_stage_floats_ * kF) +
                       AlignedBytes(N * kF) +
                       2 * d * static_cast<int64_t>(sizeof(int64_t));
  }

  // --- Shared per-call buffer: one round's reconstructed rows
  // (kRoundBlocksPerThread blocks per worker). The staged pooling phase
  // reads it; the fused path's boundary side-rows are bounded by the same
  // footprint in the worst case (every bag crossing a block edge).
  const int64_t round_rows_bytes =
      AlignedBytes(kRoundBlocksPerThread * threads * B * N * kF);

  return threads * per_block_bytes + round_rows_bytes;
}

void TtEmbeddingBag::BuildBlockDedup(std::span<const int64_t> indices,
                                     int64_t begin, int64_t end,
                                     BlockBuffers& buf) const {
  buf.unique.clear();
  buf.dedup_map.clear();
  buf.lookup_to_unique.resize(static_cast<size_t>(end - begin));
  for (int64_t l = begin; l < end; ++l) {
    const int64_t row = indices[l];
    auto [it, inserted] = buf.dedup_map.try_emplace(
        row, static_cast<int32_t>(buf.unique.size()));
    if (inserted) buf.unique.push_back(row);
    buf.lookup_to_unique[static_cast<size_t>(l - begin)] = it->second;
  }
}

void TtEmbeddingBag::ForwardBlock(std::span<const int64_t> indices,
                                  int64_t begin, int64_t end, float* rows_out,
                                  BlockBuffers& buf, Stash* stash) const {
  const TtShape& s = cores_.shape();
  const int d = s.num_cores();
  const int64_t L = end - begin;
  const int64_t N = emb_dim();

  buf.digits.resize(static_cast<size_t>(L * d));
  {
    TTREC_TRACE_SCOPE("tt.decode");
    for (int64_t l = 0; l < L; ++l) {
      s.RowDigitsInto(indices[begin + l], buf.digits.data() + l * d);
    }
  }

  buf.inter.resize(static_cast<size_t>(std::max(0, d - 2)) + 1);
  buf.a_ptrs.resize(static_cast<size_t>(L));
  buf.b_ptrs.resize(static_cast<size_t>(L));
  buf.c_ptrs.resize(static_cast<size_t>(L));

  TTREC_TRACE_SCOPE("tt.gemm_chain");
  for (int c = 1; c < d; ++c) {
    const int64_t m = prodn_[static_cast<size_t>(c - 1)];
    const int64_t kk = s.ranks[static_cast<size_t>(c)];
    const int64_t nn = cores_.SliceCols(c);
    const int64_t out_stride = m * nn;
    const bool last_stage = (c == d - 1);
    const int64_t prev_stride =
        (c >= 2) ? prodn_[static_cast<size_t>(c - 1)] *
                       s.ranks[static_cast<size_t>(c)]
                 : 0;

    float* out_base = nullptr;
    if (last_stage) {
      TTREC_CHECK_INTERNAL(out_stride == N, "final stage must produce rows");
      out_base = rows_out;
    } else {
      auto& ib = buf.inter[static_cast<size_t>(c)];
      ib.resize(static_cast<size_t>(L * out_stride));
      out_base = ib.data();
    }

    for (int64_t l = 0; l < L; ++l) {
      const int64_t* dg = buf.digits.data() + l * d;
      buf.a_ptrs[static_cast<size_t>(l)] =
          (c == 1) ? cores_.Slice(0, dg[0])
                   : buf.inter[static_cast<size_t>(c - 1)].data() +
                         l * prev_stride;
      buf.b_ptrs[static_cast<size_t>(l)] = cores_.Slice(c, dg[c]);
      buf.c_ptrs[static_cast<size_t>(l)] = out_base + l * out_stride;
    }
    BatchedGemmShape shape;
    shape.m = m;
    shape.n = nn;
    shape.k = kk;
    // Inside a block task this runs inline (pool re-entrancy); from a
    // sequential caller it still fans the batch across the pool.
    BatchedGemm(shape, buf.a_ptrs, buf.b_ptrs, buf.c_ptrs);

    if (stash != nullptr && !last_stage) {
      auto& st = stash->stage[static_cast<size_t>(c)];
      std::memcpy(st.data() + begin * out_stride,
                  buf.inter[static_cast<size_t>(c)].data(),
                  static_cast<size_t>(L * out_stride) * sizeof(float));
    }
  }
}

void TtEmbeddingBag::ReconstructRow(const int64_t* dg,
                                    const int64_t* prefetch_dg,
                                    float* row_out, float* ping,
                                    float* pong) const {
  const TtShape& s = cores_.shape();
  const int d = s.num_cores();
  if (prefetch_dg != nullptr) {
    // Pull the next lookup's core slices toward L1/L2 while this lookup's
    // chain computes. Two lines per slice cover a rank-32 stage row; deeper
    // slices stream in behind the leading lines.
    for (int k = 0; k < d; ++k) {
      const float* next = cores_.Slice(k, prefetch_dg[k]);
      __builtin_prefetch(next, 0, 3);
      __builtin_prefetch(next + 16, 0, 3);
    }
  }
  // Stage c: (prodn_[c-1] x R_c) * slice_c (R_c x n_c*R_{c+1}), exactly the
  // BatchedGemm problem the staged path runs for this lookup — same
  // operands, same leading dims, same kernel — so each stage output is
  // bitwise identical to the staged intermediate.
  const float* cur = cores_.Slice(0, dg[0]);
  float* out = ping;
  for (int c = 1; c < d; ++c) {
    const int64_t m = prodn_[static_cast<size_t>(c - 1)];
    const int64_t kk = s.ranks[static_cast<size_t>(c)];
    const int64_t nn = cores_.SliceCols(c);
    float* dst = (c == d - 1) ? row_out : out;
    Gemm(Trans::kNo, Trans::kNo, m, nn, kk, 1.0f, cur, kk,
         cores_.Slice(c, dg[c]), nn, 0.0f, dst, nn);
    cur = dst;
    out = (out == ping) ? pong : ping;
  }
}

void TtEmbeddingBag::FusedPooledForward(const CsrBatch& batch,
                                        std::span<const int64_t> bags,
                                        std::span<const float> w,
                                        float* output) const {
  const TtShape& s = cores_.shape();
  const int d = s.num_cores();
  const int64_t N = emb_dim();
  const int64_t n_lookups = batch.num_lookups();
  if (n_lookups == 0) return;

  const int64_t bs = config_.block_size;
  ThreadPool& pool = ThreadPool::Global();
  const int64_t round_blocks = std::max<int64_t>(
      1, kRoundBlocksPerThread * static_cast<int64_t>(pool.num_threads()));
  const int64_t round_lookups = round_blocks * bs;

  // Rows of bags that span a block boundary, staged per block and merged
  // sequentially in block order after each round. A bag is "interior" to a
  // block iff all its lookups fall inside that block — a function of block
  // boundaries only, never of scheduling — so every bag either accumulates
  // entirely inside one block task (race-free: that task owns the bag) or
  // entirely through this ordered merge. Both orders are lookup order, the
  // same order the staged pooling phase uses.
  struct BlockSide {
    std::vector<int64_t> lookups;
    AlignedVec<float> rows;  // lookups.size() * N floats
  };
  std::vector<BlockSide> sides(static_cast<size_t>(round_blocks));

  for (int64_t r0 = 0; r0 < n_lookups; r0 += round_lookups) {
    const int64_t r1 = std::min(n_lookups, r0 + round_lookups);
    const int64_t blocks = (r1 - r0 + bs - 1) / bs;

    pool.ParallelFor(blocks, 1, [&](int64_t c0, int64_t c1) {
      TTREC_TRACE_SCOPE("tt.fused_lookup");
      // Per-task chain scratch: two ping-pong stage buffers plus the
      // current row. All L1-sized for TT-typical shapes, so an entire
      // lookup runs out of cache instead of round-tripping the shared
      // round buffer.
      AlignedVec<float> ping(static_cast<size_t>(max_stage_floats_));
      AlignedVec<float> pong(static_cast<size_t>(max_stage_floats_));
      AlignedVec<float> row(static_cast<size_t>(N));
      std::vector<int64_t> digits(static_cast<size_t>(2 * d));
      for (int64_t blk = c0; blk < c1; ++blk) {
        const int64_t begin = r0 + blk * bs;
        const int64_t end = std::min(r1, begin + bs);
        BlockSide& side = sides[static_cast<size_t>(blk)];
        side.lookups.clear();
        side.rows.clear();
        int64_t* cur_dg = digits.data();
        int64_t* next_dg = digits.data() + d;
        s.RowDigitsInto(batch.indices[static_cast<size_t>(begin)], cur_dg);
        for (int64_t l = begin; l < end; ++l) {
          const int64_t* pf = nullptr;
          if (l + 1 < end) {
            s.RowDigitsInto(batch.indices[static_cast<size_t>(l + 1)],
                            next_dg);
            pf = next_dg;
          }
          ReconstructRow(cur_dg, pf, row.data(), ping.data(), pong.data());
          const int64_t bag = bags[static_cast<size_t>(l)];
          const bool interior =
              batch.offsets[static_cast<size_t>(bag)] >= begin &&
              batch.offsets[static_cast<size_t>(bag) + 1] <= end;
          if (interior) {
            Axpy(N, w[static_cast<size_t>(l)], row.data(), output + bag * N);
          } else {
            side.lookups.push_back(l);
            side.rows.insert(side.rows.end(), row.begin(), row.end());
          }
          std::swap(cur_dg, next_dg);
        }
      }
    });

    // Ordered merge of boundary-bag rows. Cheap: only bags crossing block
    // boundaries land here (O(blocks) bags for contiguous CSR batches).
    TTREC_TRACE_SCOPE("tt.fused_merge");
    for (int64_t blk = 0; blk < blocks; ++blk) {
      const BlockSide& side = sides[static_cast<size_t>(blk)];
      for (size_t i = 0; i < side.lookups.size(); ++i) {
        const int64_t l = side.lookups[i];
        const int64_t bag = bags[static_cast<size_t>(l)];
        Axpy(N, w[static_cast<size_t>(l)],
             side.rows.data() + static_cast<int64_t>(i) * N, output + bag * N);
      }
    }
  }
}

void TtEmbeddingBag::PooledForward(const CsrBatch& batch,
                                   std::span<const int64_t> bags,
                                   std::span<const float> w, float* output,
                                   Stash* stash, bool dedup) const {
  const int64_t N = emb_dim();
  const int64_t n_lookups = batch.num_lookups();
  if (n_lookups == 0) return;

  // The fused path covers the plain forward; stashing needs block-wide
  // per-lookup intermediates and dedup reconstructs per distinct row, so
  // both keep the staged kernels.
  if (config_.fuse_lookup && stash == nullptr && !dedup) {
    FusedPooledForward(batch, bags, w, output);
    return;
  }

  const int64_t bs = config_.block_size;
  ThreadPool& pool = ThreadPool::Global();
  const int64_t round_blocks = std::max<int64_t>(
      1, kRoundBlocksPerThread * static_cast<int64_t>(pool.num_threads()));
  const int64_t round_lookups = round_blocks * bs;

  // Reconstructed rows for one round, indexed by (lookup - round_begin).
  AlignedVec<float> rows(
      static_cast<size_t>(std::min(n_lookups, round_lookups) * N));

  for (int64_t r0 = 0; r0 < n_lookups; r0 += round_lookups) {
    const int64_t r1 = std::min(n_lookups, r0 + round_lookups);
    const int64_t blocks = (r1 - r0 + bs - 1) / bs;

    // Phase 1: reconstruct rows, block-parallel. Each block writes a
    // disjoint range of `rows` (and, when stashing, a disjoint range of the
    // stash), so tasks never overlap.
    pool.ParallelFor(blocks, 1, [&](int64_t c0, int64_t c1) {
      BlockBuffers buf;
      for (int64_t blk = c0; blk < c1; ++blk) {
        const int64_t begin = r0 + blk * bs;
        const int64_t end = std::min(r1, begin + bs);
        float* out_rows = rows.data() + (begin - r0) * N;
        if (dedup) {
          BuildBlockDedup(batch.indices, begin, end, buf);
          const int64_t num_unique = static_cast<int64_t>(buf.unique.size());
          buf.unique_rows.resize(static_cast<size_t>(num_unique * N));
          ForwardBlock(buf.unique, 0, num_unique, buf.unique_rows.data(), buf,
                       /*stash=*/nullptr);
          for (int64_t l = begin; l < end; ++l) {
            const float* src =
                buf.unique_rows.data() +
                static_cast<int64_t>(
                    buf.lookup_to_unique[static_cast<size_t>(l - begin)]) *
                    N;
            std::memcpy(out_rows + (l - begin) * N, src,
                        static_cast<size_t>(N) * sizeof(float));
          }
        } else {
          ForwardBlock(batch.indices, begin, end, out_rows, buf, stash);
        }
      }
    });

    // Phase 2: pool this round's rows into bags. Every bag is owned by
    // exactly one chunk (bags partition the lookup range), and a bag's
    // lookups accumulate in lookup order across sequential rounds — so the
    // scatter is race-free and bitwise independent of the thread count.
    const int64_t bag_lo = bags[static_cast<size_t>(r0)];
    const int64_t bag_hi = bags[static_cast<size_t>(r1 - 1)] + 1;
    pool.ParallelFor(bag_hi - bag_lo, 16, [&](int64_t u0, int64_t u1) {
      TTREC_TRACE_SCOPE("tt.pool");
      for (int64_t bag = bag_lo + u0; bag < bag_lo + u1; ++bag) {
        const int64_t lo =
            std::max(r0, batch.offsets[static_cast<size_t>(bag)]);
        const int64_t hi =
            std::min(r1, batch.offsets[static_cast<size_t>(bag) + 1]);
        float* dst = output + bag * N;
        for (int64_t l = lo; l < hi; ++l) {
          // Same Axpy kernel as the fused path's pooling, so the two paths
          // stay bitwise identical within a SIMD tier.
          Axpy(N, w[static_cast<size_t>(l)], rows.data() + (l - r0) * N, dst);
        }
      }
    });
  }
}

void TtEmbeddingBag::Forward(const CsrBatch& batch, float* output) {
  batch.Validate(num_rows());
  const int d = cores_.num_cores();
  const int64_t N = emb_dim();
  const int64_t n_lookups = batch.num_lookups();
  const int64_t n_bags = batch.num_bags();

  std::fill(output, output + n_bags * N, 0.0f);

  const std::vector<int64_t> bags = LookupBags(batch);
  const std::vector<float> w = EffectiveWeights(batch, config_.pooling, bags);

  ++forward_serial_;
  stash_.valid = false;
  if (config_.stash_intermediates) {
    stash_.stage.assign(static_cast<size_t>(std::max(0, d - 2)) + 1, {});
    for (int c = 1; c <= d - 2; ++c) {
      const int64_t stride = prodn_[static_cast<size_t>(c)] *
                             cores_.shape().ranks[static_cast<size_t>(c) + 1];
      stash_.stage[static_cast<size_t>(c)].resize(
          static_cast<size_t>(n_lookups * stride));
    }
  }

  PooledForward(batch, bags, w, output,
                config_.stash_intermediates ? &stash_ : nullptr,
                config_.deduplicate);

  if (config_.stash_intermediates) {
    stash_.valid = true;
    stash_.num_lookups = n_lookups;
    stash_.fingerprint = HashIndices(batch.indices);
    stash_.forward_serial = forward_serial_;
  }
  ++stats_.forward_calls;
  stats_.lookups += n_lookups;
  stats_.forward_flops += n_lookups * fwd_flops_per_lookup_;
}

void TtEmbeddingBag::ForwardInference(const CsrBatch& batch,
                                      float* output) const {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();
  const int64_t n_bags = batch.num_bags();

  std::fill(output, output + n_bags * N, 0.0f);

  const std::vector<int64_t> bags = LookupBags(batch);
  const std::vector<float> w = EffectiveWeights(batch, config_.pooling, bags);

  // Always the per-lookup path (no dedup): each lookup's TT chain is an
  // independent GEMM problem, so pooled outputs are bitwise identical no
  // matter how requests were micro-batched together.
  PooledForward(batch, bags, w, output, /*stash=*/nullptr, /*dedup=*/false);
}

void TtEmbeddingBag::PoolPrefetchedRows(const CsrBatch& batch,
                                        const float* rows,
                                        float* output) const {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();
  const int64_t n_bags = batch.num_bags();

  std::fill(output, output + n_bags * N, 0.0f);

  const std::vector<int64_t> bags = LookupBags(batch);
  const std::vector<float> w = EffectiveWeights(batch, config_.pooling, bags);

  // Lookup order, same Axpy kernel as PooledForward's pooling phase — each
  // bag's lookups are contiguous, so this serial sweep accumulates every
  // bag in exactly the order the block-parallel phase-2 scatter would.
  for (int64_t l = 0; l < batch.num_lookups(); ++l) {
    Axpy(N, w[static_cast<size_t>(l)], rows + l * N,
         output + bags[static_cast<size_t>(l)] * N);
  }
}

void TtEmbeddingBag::LookupRows(std::span<const int64_t> indices, float* out) {
  for (int64_t idx : indices) {
    TTREC_CHECK_INDEX(idx >= 0 && idx < num_rows(), "LookupRows: index ", idx,
                      " out of range [0, ", num_rows(), ")");
  }
  const int64_t n = static_cast<int64_t>(indices.size());
  const int64_t bs = config_.block_size;
  const int64_t blocks = (n + bs - 1) / bs;
  const int64_t N = emb_dim();
  const int d = cores_.num_cores();
  const TtShape& s = cores_.shape();
  // Blocks write disjoint output ranges and there is no accumulation, so
  // this is trivially deterministic. The fused per-row chain produces
  // bitwise the same rows as the staged block kernel (see ReconstructRow),
  // so the config switch never changes results within a tier.
  ThreadPool::Global().ParallelFor(blocks, 1, [&](int64_t c0, int64_t c1) {
    if (config_.fuse_lookup) {
      TTREC_TRACE_SCOPE("tt.fused_lookup");
      AlignedVec<float> ping(static_cast<size_t>(max_stage_floats_));
      AlignedVec<float> pong(static_cast<size_t>(max_stage_floats_));
      std::vector<int64_t> digits(static_cast<size_t>(2 * d));
      for (int64_t blk = c0; blk < c1; ++blk) {
        const int64_t begin = blk * bs;
        const int64_t end = std::min(n, begin + bs);
        int64_t* cur_dg = digits.data();
        int64_t* next_dg = digits.data() + d;
        s.RowDigitsInto(indices[static_cast<size_t>(begin)], cur_dg);
        for (int64_t l = begin; l < end; ++l) {
          const int64_t* pf = nullptr;
          if (l + 1 < end) {
            s.RowDigitsInto(indices[static_cast<size_t>(l + 1)], next_dg);
            pf = next_dg;
          }
          ReconstructRow(cur_dg, pf, out + l * N, ping.data(), pong.data());
          std::swap(cur_dg, next_dg);
        }
      }
    } else {
      BlockBuffers buf;
      for (int64_t blk = c0; blk < c1; ++blk) {
        const int64_t begin = blk * bs;
        const int64_t end = std::min(n, begin + bs);
        ForwardBlock(indices, begin, end, out + begin * N, buf,
                     /*stash=*/nullptr);
      }
    }
  });
  stats_.lookups += n;
  stats_.forward_flops += n * fwd_flops_per_lookup_;
}

void TtEmbeddingBag::BackwardBlock(const CsrBatch& batch,
                                   std::span<const int64_t> bags,
                                   std::span<const float> w,
                                   const float* grad_output, int64_t begin,
                                   int64_t end, bool use_stash,
                                   int64_t max_d_stride, int64_t max_slice,
                                   BlockBuffers& buf,
                                   BlockGrads& local) const {
  const TtShape& s = cores_.shape();
  const int d = s.num_cores();
  const int64_t N = emb_dim();
  const int64_t L = end - begin;

  local.cores.assign(static_cast<size_t>(d), BlockGrads::PerCore{});

  // `work` = gradient-carrying units in this block: one per lookup, or one
  // per distinct row when deduplicating (gradients are linear in the row,
  // so per-row aggregation is exact).
  int64_t work = L;
  if (config_.deduplicate) {
    BuildBlockDedup(batch.indices, begin, end, buf);
    work = static_cast<int64_t>(buf.unique.size());
    buf.scratch_rows.resize(static_cast<size_t>(work * N));
    ForwardBlock(buf.unique, 0, work, buf.scratch_rows.data(), buf,
                 /*stash=*/nullptr);
  } else if (use_stash) {
    // Digits are still needed for slice addressing.
    buf.digits.resize(static_cast<size_t>(L * d));
    for (int64_t l = 0; l < L; ++l) {
      s.RowDigitsInto(batch.indices[begin + l], buf.digits.data() + l * d);
    }
  } else {
    // Recompute intermediates (Algorithm 2 line 3). We only need stages
    // 1..d-2; run the forward including the last stage into a scratch row
    // buffer — its cost is small relative to the rest and keeps one code
    // path.
    buf.scratch_rows.resize(static_cast<size_t>(L * N));
    ForwardBlock(batch.indices, begin, end, buf.scratch_rows.data(), buf,
                 /*stash=*/nullptr);
  }

  // D_{d-1} = w_l * dL/d(bag row), reshaped per unit.
  buf.d_cur.resize(static_cast<size_t>(work * max_d_stride));
  buf.d_next.resize(static_cast<size_t>(work * max_d_stride));
  buf.slice_grads.resize(static_cast<size_t>(work * max_slice));
  if (config_.deduplicate) {
    std::fill(
        buf.d_cur.begin(),
        buf.d_cur.begin() + static_cast<ptrdiff_t>(work * max_d_stride),
        0.0f);
    for (int64_t l = begin; l < end; ++l) {
      const float wl = w[static_cast<size_t>(l)];
      const float* g = grad_output + bags[static_cast<size_t>(l)] * N;
      float* dcur =
          buf.d_cur.data() +
          static_cast<int64_t>(
              buf.lookup_to_unique[static_cast<size_t>(l - begin)]) *
              max_d_stride;
      for (int64_t j = 0; j < N; ++j) dcur[j] += wl * g[j];
    }
  } else {
    for (int64_t l = begin; l < end; ++l) {
      const float wl = w[static_cast<size_t>(l)];
      const float* g = grad_output + bags[static_cast<size_t>(l)] * N;
      float* dcur = buf.d_cur.data() + (l - begin) * max_d_stride;
      for (int64_t j = 0; j < N; ++j) dcur[j] = wl * g[j];
    }
  }

  buf.a_ptrs.resize(static_cast<size_t>(work));
  buf.b_ptrs.resize(static_cast<size_t>(work));
  buf.c_ptrs.resize(static_cast<size_t>(work));

  for (int c = d - 1; c >= 1; --c) {
    const int64_t m_prev = prodn_[static_cast<size_t>(c - 1)];
    const int64_t rank_c = s.ranks[static_cast<size_t>(c)];
    const int64_t cols_c = cores_.SliceCols(c);
    const int64_t slice_size = rank_c * cols_c;
    const int64_t prev_stride = (c >= 2) ? m_prev * rank_c : 0;

    auto p_prev = [&](int64_t l) -> const float* {
      const int64_t* dg = buf.digits.data() + l * d;
      if (c == 1) return cores_.Slice(0, dg[0]);
      if (use_stash) {
        return stash_.stage[static_cast<size_t>(c - 1)].data() +
               (begin + l) * prev_stride;
      }
      return buf.inter[static_cast<size_t>(c - 1)].data() + l * prev_stride;
    };

    // Slice gradients: sg = P_{c-1}^T * D_c  (Eq. 4).
    for (int64_t l = 0; l < work; ++l) {
      buf.a_ptrs[static_cast<size_t>(l)] = p_prev(l);
      buf.b_ptrs[static_cast<size_t>(l)] = buf.d_cur.data() + l * max_d_stride;
      buf.c_ptrs[static_cast<size_t>(l)] =
          buf.slice_grads.data() + l * max_slice;
    }
    BatchedGemmShape sg_shape;
    sg_shape.ta = Trans::kYes;
    sg_shape.m = rank_c;
    sg_shape.n = cols_c;
    sg_shape.k = m_prev;
    BatchedGemm(sg_shape, buf.a_ptrs, buf.b_ptrs, buf.c_ptrs);

    // Scatter-add into the block-local accumulator, in unit order: correct
    // under duplicate indices within the block and independent of how
    // blocks were scheduled across threads.
    for (int64_t l = 0; l < work; ++l) {
      const int64_t ik = buf.digits[static_cast<size_t>(l * d + c)];
      float* dst = local.SliceFor(c, ik, slice_size);
      const float* src = buf.slice_grads.data() + l * max_slice;
      for (int64_t j = 0; j < slice_size; ++j) dst[j] += src[j];
    }

    // Propagate: D_{c-1} = D_c * slice_c^T  (Eq. 5).
    for (int64_t l = 0; l < work; ++l) {
      const int64_t* dg = buf.digits.data() + l * d;
      buf.a_ptrs[static_cast<size_t>(l)] = buf.d_cur.data() + l * max_d_stride;
      buf.b_ptrs[static_cast<size_t>(l)] = cores_.Slice(c, dg[c]);
      buf.c_ptrs[static_cast<size_t>(l)] =
          buf.d_next.data() + l * max_d_stride;
    }
    BatchedGemmShape prop_shape;
    prop_shape.tb = Trans::kYes;
    prop_shape.m = m_prev;
    prop_shape.n = rank_c;
    prop_shape.k = cols_c;
    BatchedGemm(prop_shape, buf.a_ptrs, buf.b_ptrs, buf.c_ptrs);
    buf.d_cur.swap(buf.d_next);
  }

  // After the c == 1 iteration, D_0 is exactly the gradient of the core-0
  // slice of each lookup.
  const int64_t slice0 = cores_.SliceSize(0);
  for (int64_t l = 0; l < work; ++l) {
    const int64_t i0 = buf.digits[static_cast<size_t>(l * d)];
    float* dst = local.SliceFor(0, i0, slice0);
    const float* src = buf.d_cur.data() + l * max_d_stride;
    for (int64_t j = 0; j < slice0; ++j) dst[j] += src[j];
  }
}

void TtEmbeddingBag::Backward(const CsrBatch& batch,
                              const float* grad_output) {
  batch.Validate(num_rows());
  EnsureGrads();
  const TtShape& s = cores_.shape();
  const int d = cores_.num_cores();
  const int64_t N = emb_dim();
  const int64_t n_lookups = batch.num_lookups();

  const std::vector<int64_t> bags = LookupBags(batch);
  const std::vector<float> w = EffectiveWeights(batch, config_.pooling, bags);

  // The stash is trusted only when it provably came from a Forward over
  // THIS batch: same lookup count, same indices fingerprint, and written by
  // the most recent Forward call. A matching count alone is not evidence —
  // Forward(A); Backward(B) with |A| == |B| would silently replay A's
  // intermediates and corrupt every gradient. On mismatch we fall back to
  // recompute, which yields bitwise identical gradients (the stash holds
  // memcpys of exactly the values recompute would produce).
  const bool use_stash = config_.stash_intermediates && stash_.valid &&
                         stash_.num_lookups == n_lookups &&
                         stash_.forward_serial == forward_serial_ &&
                         stash_.fingerprint == HashIndices(batch.indices);

  // Maximum per-lookup size of the propagated gradient D_c and of a slice
  // gradient, across stages.
  // D_c has prodn_[c] * R_{c+1} elements per lookup, for every c in
  // [0, d-1] — c = 0 is the final propagated gradient (the core-0 slice
  // gradient), which can be the largest when d == 2.
  int64_t max_d_stride = N;
  int64_t max_slice = cores_.SliceSize(0);
  for (int c = 0; c < d; ++c) {
    max_d_stride = std::max(
        max_d_stride,
        prodn_[static_cast<size_t>(c)] * s.ranks[static_cast<size_t>(c) + 1]);
    if (c > 0) max_slice = std::max(max_slice, cores_.SliceSize(c));
  }

  const int64_t bs = config_.block_size;
  const int64_t num_blocks = (n_lookups + bs - 1) / bs;
  ThreadPool& pool = ThreadPool::Global();
  const int64_t round_blocks = std::max<int64_t>(
      1, kRoundBlocksPerThread * static_cast<int64_t>(pool.num_threads()));

  std::vector<BlockGrads> block_grads;
  for (int64_t rb = 0; rb < num_blocks; rb += round_blocks) {
    const int64_t rcount = std::min(round_blocks, num_blocks - rb);
    block_grads.assign(static_cast<size_t>(rcount), BlockGrads{});

    // Phase 1: per-block Algorithm 2 chains, block-parallel. Each task
    // accumulates into its own BlockGrads only.
    pool.ParallelFor(rcount, 1, [&](int64_t c0, int64_t c1) {
      TTREC_TRACE_SCOPE("tt.backward.block");
      BlockBuffers buf;
      for (int64_t bi = c0; bi < c1; ++bi) {
        const int64_t begin = (rb + bi) * bs;
        const int64_t end = std::min(n_lookups, begin + bs);
        BackwardBlock(batch, bags, w, grad_output, begin, end, use_stash,
                      max_d_stride, max_slice, buf,
                      block_grads[static_cast<size_t>(bi)]);
      }
    });

    // Phase 2: merge block-local gradients into the dense per-core buffers
    // in fixed block order. Cores are independent (grads_ / touched state
    // are per-core), so the merge parallelizes over cores while the
    // block-order summation keeps results thread-count-invariant.
    pool.ParallelFor(d, 1, [&](int64_t k0, int64_t k1) {
      TTREC_TRACE_SCOPE("tt.backward.merge");
      for (int64_t k = k0; k < k1; ++k) {
        const int64_t slice_size = cores_.SliceSize(static_cast<int>(k));
        Tensor& grad = grads_[static_cast<size_t>(k)];
        for (const BlockGrads& bg : block_grads) {
          const auto& pc = bg.cores[static_cast<size_t>(k)];
          for (size_t p = 0; p < pc.slices.size(); ++p) {
            const int64_t ik = pc.slices[p];
            MarkTouched(static_cast<int>(k), ik);
            float* dst = grad.data() + ik * slice_size;
            const float* src =
                pc.data.data() + static_cast<int64_t>(p) * slice_size;
            for (int64_t j = 0; j < slice_size; ++j) dst[j] += src[j];
          }
        }
      }
    });
  }

  ++stats_.backward_calls;
  stats_.backward_flops += n_lookups * bwd_flops_per_lookup_;
}

void TtEmbeddingBag::ApplySgd(float lr) {
  if (grads_.empty()) return;
  // Only slices touched since the last ApplySgd/ZeroGrad carry gradient;
  // update and re-zero exactly those — O(touched) not O(params), which is
  // what keeps the cached hybrid's miss path cheap at high hit rates.
  // Each touched slice is updated by exactly one task and the update is
  // elementwise, so any chunking yields the same result.
  ThreadPool& pool = ThreadPool::Global();
  for (int k = 0; k < cores_.num_cores(); ++k) {
    const int64_t slice_size = cores_.SliceSize(k);
    Tensor& core = cores_.core(k);
    Tensor& grad = grads_[static_cast<size_t>(k)];
    auto& flags = touched_flags_[static_cast<size_t>(k)];
    auto& touched = touched_slices_[static_cast<size_t>(k)];
    const int64_t grain =
        std::max<int64_t>(1, 4096 / std::max<int64_t>(1, slice_size));
    pool.ParallelFor(
        static_cast<int64_t>(touched.size()), grain,
        [&](int64_t t0, int64_t t1) {
          for (int64_t t = t0; t < t1; ++t) {
            const int64_t ik = touched[static_cast<size_t>(t)];
            float* w = core.data() + ik * slice_size;
            float* g = grad.data() + ik * slice_size;
            for (int64_t j = 0; j < slice_size; ++j) {
              w[j] -= lr * g[j];
              g[j] = 0.0f;
            }
            flags[static_cast<size_t>(ik)] = 0;
          }
        });
    touched.clear();
  }
  stash_.valid = false;  // cores changed; stashed intermediates are stale
}

void TtEmbeddingBag::ApplyAdagrad(float lr, float eps) {
  if (grads_.empty()) return;
  TTREC_CHECK_CONFIG(eps > 0.0f, "ApplyAdagrad: eps must be positive");
  if (adagrad_state_.empty()) {
    adagrad_state_.reserve(static_cast<size_t>(cores_.num_cores()));
    for (int k = 0; k < cores_.num_cores(); ++k) {
      adagrad_state_.emplace_back(cores_.core(k).shape());
    }
  }
  // Same ownership argument as ApplySgd: one task per touched slice,
  // elementwise math — deterministic for any thread count.
  ThreadPool& pool = ThreadPool::Global();
  for (int k = 0; k < cores_.num_cores(); ++k) {
    const int64_t slice_size = cores_.SliceSize(k);
    Tensor& core = cores_.core(k);
    Tensor& grad = grads_[static_cast<size_t>(k)];
    Tensor& state = adagrad_state_[static_cast<size_t>(k)];
    auto& flags = touched_flags_[static_cast<size_t>(k)];
    auto& touched = touched_slices_[static_cast<size_t>(k)];
    const int64_t grain =
        std::max<int64_t>(1, 4096 / std::max<int64_t>(1, slice_size));
    pool.ParallelFor(
        static_cast<int64_t>(touched.size()), grain,
        [&](int64_t t0, int64_t t1) {
          for (int64_t t = t0; t < t1; ++t) {
            const int64_t ik = touched[static_cast<size_t>(t)];
            float* w = core.data() + ik * slice_size;
            float* g = grad.data() + ik * slice_size;
            float* st = state.data() + ik * slice_size;
            for (int64_t j = 0; j < slice_size; ++j) {
              st[j] += g[j] * g[j];
              w[j] -= lr * g[j] / (std::sqrt(st[j]) + eps);
              g[j] = 0.0f;
            }
            flags[static_cast<size_t>(ik)] = 0;
          }
        });
    touched.clear();
  }
  stash_.valid = false;
}

}  // namespace ttrec
