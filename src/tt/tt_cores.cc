#include "tt/tt_cores.h"

#include <utility>

#include "tensor/check.h"
#include "tensor/gemm.h"
#include "tensor/parallel.h"

namespace ttrec {

TtCores::TtCores(TtShape shape) : shape_(std::move(shape)) {
  shape_.Validate();
  const int d = shape_.num_cores();
  cores_.reserve(static_cast<size_t>(d));
  prodn_.resize(static_cast<size_t>(d));
  int64_t prod = 1;
  for (int k = 0; k < d; ++k) {
    const int64_t mk = shape_.row_factors[static_cast<size_t>(k)];
    cores_.emplace_back(
        std::vector<int64_t>{mk, SliceRows(k) * SliceCols(k)});
    prod *= shape_.col_factors[static_cast<size_t>(k)];
    prodn_[static_cast<size_t>(k)] = prod;
  }
}

Tensor& TtCores::core(int k) {
  TTREC_CHECK_INDEX(k >= 0 && k < num_cores(), "core index out of range");
  return cores_[static_cast<size_t>(k)];
}

const Tensor& TtCores::core(int k) const {
  TTREC_CHECK_INDEX(k >= 0 && k < num_cores(), "core index out of range");
  return cores_[static_cast<size_t>(k)];
}

int64_t TtCores::SliceRows(int k) const {
  TTREC_CHECK_INDEX(k >= 0 && k < num_cores(), "core index out of range");
  return shape_.ranks[static_cast<size_t>(k)];
}

int64_t TtCores::SliceCols(int k) const {
  TTREC_CHECK_INDEX(k >= 0 && k < num_cores(), "core index out of range");
  return shape_.col_factors[static_cast<size_t>(k)] *
         shape_.ranks[static_cast<size_t>(k) + 1];
}

float* TtCores::Slice(int k, int64_t ik) {
  return const_cast<float*>(std::as_const(*this).Slice(k, ik));
}

const float* TtCores::Slice(int k, int64_t ik) const {
  const Tensor& c = core(k);
  TTREC_CHECK_INDEX(ik >= 0 && ik < c.dim(0), "slice index ", ik,
                    " out of range for core ", k);
  return c.data() + ik * SliceSize(k);
}

void TtCores::MaterializeRow(int64_t row, float* out) const {
  const int d = num_cores();
  const std::vector<int64_t> digits = shape_.RowDigits(row);

  // P_0 = slice_0(i_0), an (n_0 x R_1) matrix; then
  // P_k = reshape(P_{k-1} ((prod n_j, j<=k-1) x R_k-rows...) * slice_k).
  // Final P_{d-1} has prod(n) = emb_dim elements.
  const float* src = Slice(0, digits[0]);
  std::vector<float> cur(src, src + SliceSize(0));
  std::vector<float> next;
  for (int k = 1; k < d; ++k) {
    const int64_t m = prodn_[static_cast<size_t>(k - 1)];
    const int64_t kk = shape_.ranks[static_cast<size_t>(k)];
    const int64_t nn = SliceCols(k);
    next.assign(static_cast<size_t>(m * nn), 0.0f);
    Gemm(Trans::kNo, Trans::kNo, m, nn, kk, 1.0f, cur.data(),
         Slice(k, digits[static_cast<size_t>(k)]), 0.0f, next.data());
    cur.swap(next);
  }
  TTREC_CHECK_INTERNAL(static_cast<int64_t>(cur.size()) == emb_dim(),
                       "materialized row has wrong length");
  std::copy(cur.begin(), cur.end(), out);
}

Tensor TtCores::MaterializeRows(std::span<const int64_t> rows) const {
  // Rows are independent TT chains writing disjoint output ranges, so this
  // parallelizes trivially and deterministically. Keeps the LFU cache's
  // refresh (CachedTtEmbedding::RefreshCache materializes the whole hot
  // set) off the critical path on multi-core hosts.
  Tensor out({static_cast<int64_t>(rows.size()), emb_dim()});
  ParallelFor(
      static_cast<int64_t>(rows.size()),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          MaterializeRow(rows[static_cast<size_t>(i)],
                         out.data() + i * emb_dim());
        }
      },
      /*grain=*/8);
  return out;
}

Tensor TtCores::MaterializeFull() const {
  Tensor out({num_rows(), emb_dim()});
  ParallelFor(
      num_rows(),
      [&](int64_t begin, int64_t end) {
        for (int64_t r = begin; r < end; ++r) {
          MaterializeRow(r, out.data() + r * emb_dim());
        }
      },
      /*grain=*/8);
  return out;
}

}  // namespace ttrec
