// Storage for the TT cores of one compressed embedding table.
//
// Core k is logically the 4-d tensor G_k in R^{R_{k-1} x m_k x n_k x R_k}
// (paper Eq. 2). We store it *slice-major*: the m_k slices are contiguous,
// each an (R_{k-1} x n_k*R_k) row-major matrix, so that a lookup's per-core
// slice is a single pointer + GEMM operand — exactly the layout the paper's
// batched-GEMM kernels (Algorithm 1/2) index with `&G_j[idx[j][k]][0]`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/random.h"
#include "tensor/tensor.h"
#include "tt/tt_shapes.h"

namespace ttrec {

class TtCores {
 public:
  /// Allocates zero-filled cores for `shape` (validated).
  explicit TtCores(TtShape shape);

  const TtShape& shape() const { return shape_; }
  int num_cores() const { return shape_.num_cores(); }
  int64_t num_rows() const { return shape_.num_rows; }
  int64_t emb_dim() const { return shape_.emb_dim; }

  /// Whole core k as a (m_k, R_{k-1} * n_k * R_k) tensor (slice-major).
  Tensor& core(int k);
  const Tensor& core(int k) const;

  /// Pointer to slice i_k of core k: an (R_{k-1} x n_k*R_k) row-major matrix.
  float* Slice(int k, int64_t ik);
  const float* Slice(int k, int64_t ik) const;

  /// Rows (R_{k-1}) / columns (n_k * R_k) / element count of a core-k slice.
  int64_t SliceRows(int k) const;
  int64_t SliceCols(int k) const;
  int64_t SliceSize(int k) const { return SliceRows(k) * SliceCols(k); }

  /// Reconstructs embedding row `row` (length emb_dim) by chaining the
  /// per-core slice products of Eq. (3). Scalar path — used by the LFU cache
  /// to populate entries and by tests; the batched path lives in
  /// TtEmbeddingBag.
  void MaterializeRow(int64_t row, float* out) const;

  /// Reconstructs a set of rows into a (rows.size() x emb_dim) tensor.
  Tensor MaterializeRows(std::span<const int64_t> rows) const;

  /// Reconstructs the entire logical table (num_rows x emb_dim).
  /// Memory-heavy by design — this is what the T3nsor baseline does.
  Tensor MaterializeFull() const;

  int64_t TotalParams() const { return shape_.TotalParams(); }
  int64_t MemoryBytes() const {
    return TotalParams() * static_cast<int64_t>(sizeof(float));
  }

 private:
  TtShape shape_;
  std::vector<Tensor> cores_;
  std::vector<int64_t> prodn_;  // prodn_[k] = n_0 * ... * n_k
};

}  // namespace ttrec
