// TT-EmbeddingBag: the paper's core operator (§4.1, Algorithms 1 & 2).
//
// Forward: a batch of embedding lookups is processed in blocks of up to
// `block_size` lookups. Blocks execute concurrently on the global ThreadPool
// — each block task owns a private BlockBuffers, so no kernel state is
// shared between workers. Within a block each TT stage runs as ONE batched
// GEMM whose per-problem operands are pointers to core slices and
// intermediate buffers — the CPU analogue of the cuBLAS GemmBatchedEx
// launches in Algorithm 1 (nested BatchedGemm calls run inline on the block
// task's thread). Reconstructed rows are then pooled into bags with optional
// per-sample weights (Eq. 6/7); every bag is owned by exactly one pooling
// task and accumulates its lookups in lookup order, so pooled outputs are
// bitwise independent of the thread count.
//
// Backward (Algorithm 2, Eq. 4/5): intermediates are either recomputed
// (default; lowest memory, the paper's choice) or replayed from the stash
// written by the previous Forward (faster, more memory — the trade-off §4.2
// discusses). Per-lookup slice gradients come from batched GEMMs; each block
// task scatter-adds them into block-local slice accumulators (touched-slice
// maps), which are then merged into the dense per-core gradient buffers in
// fixed block order. Block boundaries depend only on `block_size`, so the
// result is bitwise identical for any thread count, and duplicate indices
// within a batch stay well-defined.
//
// ApplySgd folds the accumulated gradients into the cores (plain SGD, the
// optimizer MLPerf-DLRM uses) and clears them.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/csr_batch.h"
#include "tensor/aligned.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"
#include "tt/tt_cores.h"
#include "tt/tt_init.h"

namespace ttrec {

struct TtEmbeddingConfig {
  TtShape shape;
  PoolingMode pooling = PoolingMode::kSum;
  /// Max lookups per batched-GEMM block (B in Algorithm 1). Blocks are the
  /// unit of parallelism and bound intermediate memory at block_size *
  /// emb_dim * max_rank floats per in-flight block. Block boundaries are a
  /// function of this config alone — never of the thread count — which is
  /// what makes dedup grouping and gradient merge order reproducible.
  int64_t block_size = 1024;
  /// Keep forward intermediates for the next Backward call instead of
  /// recomputing them (paper §4.2: "can be eliminated by storing tensors
  /// from the forward pass ... slightly increased memory footprint").
  bool stash_intermediates = false;
  /// Deduplicate repeated row indices within each block: the TT chain runs
  /// once per distinct row, lookups copy/aggregate. Wins when pooling
  /// factors are large (the embedding-dominated DLRMs of paper §6.6) or
  /// traffic is Zipf-hot. Mutually exclusive with stash_intermediates
  /// (the stash layout is per-lookup).
  bool deduplicate = false;
  /// Fuse decode→GEMM-chain→pool per lookup: each row's stage
  /// intermediates stay in a thread-private L1-sized ping-pong buffer and
  /// pooling accumulates the row immediately, instead of staging every
  /// reconstructed row through the shared round buffer. Bitwise identical
  /// to the staged path within a SIMD dispatch tier (same Gemm/Axpy kernel
  /// sequence per row, same per-bag accumulation order). Applies to the
  /// plain forward path only — stashing and dedup always use the staged
  /// kernels, whose layouts are inherently block-wide.
  bool fuse_lookup = true;
};

/// Counters for the memory/compute accounting of Figures 8 and 11.
struct TtEmbeddingStats {
  int64_t forward_calls = 0;
  int64_t backward_calls = 0;
  int64_t lookups = 0;
  int64_t forward_flops = 0;
  int64_t backward_flops = 0;
};

class TtEmbeddingBag {
 public:
  /// Creates the operator and initializes cores with `init`.
  TtEmbeddingBag(TtEmbeddingConfig config, TtInit init, Rng& rng);

  /// Adopts pre-built cores (e.g. from TtDecompose of a trained table).
  TtEmbeddingBag(TtEmbeddingConfig config, TtCores cores);

  int64_t num_rows() const { return cores_.num_rows(); }
  int64_t emb_dim() const { return cores_.emb_dim(); }
  const TtShape& shape() const { return cores_.shape(); }
  const TtEmbeddingConfig& config() const { return config_; }
  TtCores& cores() { return cores_; }
  const TtCores& cores() const { return cores_; }
  const TtEmbeddingStats& stats() const { return stats_; }

  /// Pools the batch into `output` (num_bags x emb_dim, row-major,
  /// overwritten). Validates the batch against num_rows(). Blocks run
  /// concurrently on the global ThreadPool; the result is bitwise identical
  /// for any thread count.
  void Forward(const CsrBatch& batch, float* output);

  /// Read-only forward for serving: identical arithmetic to Forward (minus
  /// stashing and dedup, so per-lookup results are independent of how
  /// requests are batched), but const and thread-safe for concurrent
  /// callers — no gradient buffers, no stash, and no stats counters are
  /// touched. Serving telemetry lives in serve/ServeMetrics instead.
  void ForwardInference(const CsrBatch& batch, float* output) const;

  /// Pools pre-decoded rows (one emb_dim row per lookup of `batch`, lookup
  /// order) into `output` with exactly ForwardInference's weighting and
  /// Axpy accumulation order — the decode is skipped, the pooling phase is
  /// bit-for-bit the same. Lets the shard router pool rows fetched from
  /// remote shards identically to a local lookup.
  void PoolPrefetchedRows(const CsrBatch& batch, const float* rows,
                          float* output) const;

  /// Reconstructs individual rows without pooling into `out`
  /// (indices.size() x emb_dim). Uses the same batched kernel; blocks run
  /// concurrently (disjoint output ranges, no accumulation).
  void LookupRows(std::span<const int64_t> indices, float* out);

  /// Accumulates core gradients for `batch` given `grad_output`
  /// (num_bags x emb_dim). The stash written by the previous Forward is
  /// consumed only when it provably came from this exact batch (lookup
  /// count, forward serial, and an indices fingerprint all match);
  /// otherwise intermediates are recomputed, which yields bitwise the same
  /// gradients.
  void Backward(const CsrBatch& batch, const float* grad_output);

  /// cores -= lr * grads; gradients are cleared. Stashed intermediates are
  /// invalidated (the cores changed). Touched slices update in parallel
  /// (each slice is owned by one task — deterministic for any chunking).
  void ApplySgd(float lr);

  /// Elementwise Adagrad on the TT cores: state += g^2,
  /// core -= lr * g / (sqrt(state) + eps). Only touched slices are visited;
  /// the accumulator persists across steps (allocated lazily, one float per
  /// core parameter). The paper trains with SGD (MLPerf); this is the
  /// production-DLRM optimizer offered as an extension.
  void ApplyAdagrad(float lr, float eps = 1e-8f);

  /// Accumulated gradient of core k (same geometry as the core).
  const Tensor& core_grad(int k) const;

  /// Clears accumulated gradients without applying them.
  void ZeroGrad();

  /// Sum of squares over all accumulated core gradients (touched slices
  /// only — untouched slices are zero).
  double GradSqNorm() const;

  /// Scales all accumulated core gradients (gradient clipping).
  void ScaleGrads(float scale);

  /// Serializes / restores the Adagrad accumulators so a resumed run
  /// continues the exact optimizer trajectory (no-op marker under SGD).
  void SaveOptState(BinaryWriter& w) const;
  void LoadOptState(BinaryReader& r);

  /// Parameter memory (cores only).
  int64_t MemoryBytes() const { return cores_.MemoryBytes(); }
  /// Peak transient memory of a Forward/Backward call: per-block-task
  /// buffers (stage intermediates, GEMM pointer arrays, backward ping-pong
  /// and slice-gradient scratch, dedup scratch, block-local gradient
  /// accumulators) times the number of concurrent block tasks, plus the
  /// shared per-round row buffer the pooling phase reads. `num_threads`
  /// <= 0 means size for the current global ThreadPool.
  int64_t WorkspaceBytes(int num_threads = 0) const;

 private:
  struct BlockBuffers;
  struct BlockGrads;
  struct Stash;

  /// Computes reconstructed rows for lookups [begin, end) of `indices` into
  /// `rows_out` (contiguous, emb_dim stride). If `stash` is non-null, stage
  /// intermediates for these lookups are copied into it (disjoint per-block
  /// ranges, so concurrent block tasks never overlap). Const — all mutable
  /// state is passed in, which is what makes the inference path shareable
  /// across threads.
  void ForwardBlock(std::span<const int64_t> indices, int64_t begin,
                    int64_t end, float* rows_out, BlockBuffers& buf,
                    Stash* stash) const;

  /// Shared engine of Forward / ForwardInference: reconstructs rows block-
  /// parallel, then pools them into `output` with per-bag ownership. Rounds
  /// of blocks bound the row buffer; round boundaries never change results.
  /// Routes to FusedPooledForward when config_.fuse_lookup applies (no
  /// stash, no dedup).
  void PooledForward(const CsrBatch& batch, std::span<const int64_t> bags,
                     std::span<const float> w, float* output, Stash* stash,
                     bool dedup) const;

  /// Fused per-row forward: decode, GEMM chain, and pooling of one lookup
  /// complete before the next lookup starts, with software prefetch of the
  /// next lookup's core slices. Bags interior to a block accumulate
  /// directly (each such bag is owned by exactly one block task); bags
  /// spanning a block boundary stage their rows per block and are merged
  /// sequentially in block order after each round — per-bag accumulation
  /// order is lookup order either way, exactly like the staged path.
  void FusedPooledForward(const CsrBatch& batch, std::span<const int64_t> bags,
                          std::span<const float> w, float* output) const;

  /// Runs one lookup's TT GEMM chain: digits `dg` select the core slices,
  /// the final stage writes the emb_dim row to `row_out`, earlier stages
  /// ping-pong between `ping`/`pong` (each max_stage_floats_ floats). When
  /// `prefetch_dg` is non-null, the next lookup's core slices are
  /// prefetched before the chain runs. Per-stage Gemm calls are identical
  /// to the BatchedGemm problems of the staged path, so rows are bitwise
  /// equal within a SIMD tier.
  void ReconstructRow(const int64_t* dg, const int64_t* prefetch_dg,
                      float* row_out, float* ping, float* pong) const;

  /// Backward for lookups [begin, end): runs the per-block Algorithm 2
  /// chain and scatter-adds slice gradients into the block-local `local`
  /// accumulator (never into grads_ — that merge happens on the caller, in
  /// block order). Const for the same reason as ForwardBlock.
  void BackwardBlock(const CsrBatch& batch, std::span<const int64_t> bags,
                     std::span<const float> w, const float* grad_output,
                     int64_t begin, int64_t end, bool use_stash,
                     int64_t max_d_stride, int64_t max_slice,
                     BlockBuffers& buf, BlockGrads& local) const;

  void EnsureGrads();

  /// Marks slice `ik` of core `k` as carrying gradient (so ApplySgd and
  /// ZeroGrad touch only dirty slices — O(batch) instead of O(params)).
  void MarkTouched(int k, int64_t ik);

  /// Fills buf.unique / buf.lookup_to_unique for lookups [begin, end).
  void BuildBlockDedup(std::span<const int64_t> indices, int64_t begin,
                       int64_t end, BlockBuffers& buf) const;

  TtEmbeddingConfig config_;
  TtCores cores_;
  std::vector<Tensor> grads_;          // lazily allocated, one per core
  std::vector<Tensor> adagrad_state_;  // lazily allocated by ApplyAdagrad
  // Dirty-slice tracking: flags (per core, per slice) + compact lists.
  std::vector<std::vector<uint8_t>> touched_flags_;
  std::vector<std::vector<int64_t>> touched_slices_;
  TtEmbeddingStats stats_;

  // prodn_[k] = n_0 * ... * n_k (column-factor prefix products).
  std::vector<int64_t> prodn_;

  // Stash: per-lookup intermediates of stages 0..d-2 for the whole last
  // forward batch (stage 0 entries are slice copies only implicitly — the
  // slices themselves serve; we stash stages 1..d-2). The fingerprint and
  // forward serial stamp WHICH batch the stash came from: Backward must not
  // trust a stash merely because the lookup count matches (a Forward on
  // batch A followed by Backward on batch B of equal size would otherwise
  // silently reuse A's intermediates and corrupt gradients).
  struct Stash {
    bool valid = false;
    int64_t num_lookups = 0;
    uint64_t fingerprint = 0;     // hash of the forward batch's indices
    int64_t forward_serial = -1;  // which Forward call wrote this stash
    std::vector<AlignedVec<float>> stage;  // stage[c]: intermediates c=1..d-2
  };
  Stash stash_;
  int64_t forward_serial_ = 0;  // incremented by every Forward

  int64_t fwd_flops_per_lookup_ = 0;
  int64_t bwd_flops_per_lookup_ = 0;
  // Largest per-lookup stage output (>= emb_dim); sizes the fused path's
  // ping-pong buffers.
  int64_t max_stage_floats_ = 0;
};

}  // namespace ttrec
