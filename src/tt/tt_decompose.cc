#include "tt/tt_decompose.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"
#include "tensor/svd.h"

namespace ttrec {

namespace {

// Rearranges W (M x N, zero-padded to prod(m_k) rows) into the d-mode tensor
// T with mode sizes D_k = m_k * n_k and grouped indices a_k = i_k * n_k + j_k
// (Eq. 2's (i_k, j_k) pairing), returned flat in row-major mode order.
std::vector<float> GroupedTensor(const Tensor& table, const TtShape& shape) {
  const int d = shape.num_cores();
  const int64_t n = shape.emb_dim;
  int64_t padded_rows = 1;
  for (int64_t f : shape.row_factors) padded_rows *= f;
  const int64_t total = padded_rows * n;

  std::vector<float> t(static_cast<size_t>(total), 0.0f);
  // Mode strides of T (row-major over modes 0..d-1 with sizes D_k).
  std::vector<int64_t> mode_stride(static_cast<size_t>(d), 1);
  for (int k = d - 2; k >= 0; --k) {
    mode_stride[static_cast<size_t>(k)] =
        mode_stride[static_cast<size_t>(k) + 1] *
        shape.row_factors[static_cast<size_t>(k) + 1] *
        shape.col_factors[static_cast<size_t>(k) + 1];
  }

  std::vector<int64_t> row_digits(static_cast<size_t>(d), 0);
  for (int64_t i = 0; i < shape.num_rows; ++i) {
    // Mixed-radix row digits (most significant first).
    int64_t rem = i;
    for (int k = d - 1; k >= 0; --k) {
      const int64_t f = shape.row_factors[static_cast<size_t>(k)];
      row_digits[static_cast<size_t>(k)] = rem % f;
      rem /= f;
    }
    for (int64_t j = 0; j < n; ++j) {
      // Column digits over col_factors.
      int64_t flat = 0;
      int64_t jrem = j;
      // Walk modes most-significant-first; need column digits in the same
      // order, so peel from the most significant side.
      int64_t denom = n;
      for (int k = 0; k < d; ++k) {
        const int64_t nk = shape.col_factors[static_cast<size_t>(k)];
        denom /= nk;
        const int64_t jk = jrem / denom;
        jrem %= denom;
        const int64_t ak = row_digits[static_cast<size_t>(k)] * nk + jk;
        flat += ak * mode_stride[static_cast<size_t>(k)];
      }
      t[static_cast<size_t>(flat)] = table.data()[i * n + j];
    }
  }
  return t;
}

}  // namespace

TtCores TtDecompose(const Tensor& table, const TtShape& shape) {
  shape.Validate();
  TTREC_CHECK_SHAPE(table.ndim() == 2 && table.dim(0) == shape.num_rows &&
                        table.dim(1) == shape.emb_dim,
                    "TtDecompose: table shape does not match TT shape (",
                    table.dim(0), "x", table.dim(1), " vs ", shape.num_rows,
                    "x", shape.emb_dim, ")");
  const int d = shape.num_cores();

  std::vector<int64_t> mode_sizes(static_cast<size_t>(d));
  int64_t total = 1;
  for (int k = 0; k < d; ++k) {
    mode_sizes[static_cast<size_t>(k)] =
        shape.row_factors[static_cast<size_t>(k)] *
        shape.col_factors[static_cast<size_t>(k)];
    total *= mode_sizes[static_cast<size_t>(k)];
  }

  std::vector<float> flat = GroupedTensor(table, shape);
  TTREC_CHECK_INTERNAL(static_cast<int64_t>(flat.size()) == total,
                       "grouped tensor size mismatch");

  // Actual ranks achieved (clamped per unfolding).
  std::vector<int64_t> ranks(static_cast<size_t>(d) + 1, 1);

  // Raw core data in (R_{k-1}, D_k, R_k) index order; permuted to the
  // slice-major storage at the end.
  std::vector<Tensor> raw_cores;
  raw_cores.reserve(static_cast<size_t>(d));

  // Current unfolding C of shape (r_prev * D_k) x rest.
  Tensor cur({1, total}, std::move(flat));
  int64_t rest = total;
  for (int k = 0; k < d - 1; ++k) {
    const int64_t dk = mode_sizes[static_cast<size_t>(k)];
    const int64_t rows = ranks[static_cast<size_t>(k)] * dk;
    rest /= dk;
    cur.Reshape({rows, rest});
    const int64_t want = shape.ranks[static_cast<size_t>(k) + 1];
    SvdResult svd = TruncatedSvd(cur, std::min({want, rows, rest}));
    const int64_t r = static_cast<int64_t>(svd.s.size());
    ranks[static_cast<size_t>(k) + 1] = r;
    raw_cores.push_back(std::move(svd.u));  // rows x r
    // cur <- diag(s) * Vt : r x rest.
    Tensor next({r, rest});
    for (int64_t i = 0; i < r; ++i) {
      const float s = svd.s[static_cast<size_t>(i)];
      const float* src = svd.vt.data() + i * rest;
      float* dst = next.data() + i * rest;
      for (int64_t j = 0; j < rest; ++j) dst[j] = s * src[j];
    }
    cur = std::move(next);
  }
  // Last core: cur is (R_{d-1} x D_d).
  raw_cores.push_back(std::move(cur));

  TtShape actual = shape;
  actual.ranks = ranks;
  actual.Validate();
  TtCores cores(actual);

  // Permute raw (R_{k-1}, i_k, j_k, R_k) into slice-major
  // [i_k][r_prev][j_k][r_next].
  for (int k = 0; k < d; ++k) {
    const int64_t r_prev = ranks[static_cast<size_t>(k)];
    const int64_t r_next = ranks[static_cast<size_t>(k) + 1];
    const int64_t mk = shape.row_factors[static_cast<size_t>(k)];
    const int64_t nk = shape.col_factors[static_cast<size_t>(k)];
    const Tensor& raw = raw_cores[static_cast<size_t>(k)];
    // raw is ((r_prev * m_k * n_k) x r_next), row index = (rp * m_k + i) *
    // n_k + j.
    for (int64_t rp = 0; rp < r_prev; ++rp) {
      for (int64_t i = 0; i < mk; ++i) {
        for (int64_t j = 0; j < nk; ++j) {
          const float* src =
              raw.data() + (((rp * mk + i) * nk + j) * r_next);
          float* dst = cores.Slice(k, i) + rp * (nk * r_next) + j * r_next;
          std::copy(src, src + r_next, dst);
        }
      }
    }
  }
  return cores;
}

double TtReconstructionError(const Tensor& table, const TtCores& cores) {
  TTREC_CHECK_SHAPE(table.ndim() == 2 && table.dim(0) == cores.num_rows() &&
                        table.dim(1) == cores.emb_dim(),
                    "TtReconstructionError: shape mismatch");
  double num = 0.0;
  double den = 0.0;
  std::vector<float> row(static_cast<size_t>(cores.emb_dim()));
  for (int64_t i = 0; i < cores.num_rows(); ++i) {
    cores.MaterializeRow(i, row.data());
    const float* w = table.data() + i * cores.emb_dim();
    for (int64_t j = 0; j < cores.emb_dim(); ++j) {
      const double diff = static_cast<double>(w[j]) - row[static_cast<size_t>(j)];
      num += diff * diff;
      den += static_cast<double>(w[j]) * w[j];
    }
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

}  // namespace ttrec
