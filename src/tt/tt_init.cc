#include "tt/tt_init.h"

#include <cmath>

#include "tensor/check.h"

namespace ttrec {

const char* TtInitName(TtInit init) {
  switch (init) {
    case TtInit::kUniform:
      return "uniform";
    case TtInit::kGaussian:
      return "gaussian";
    case TtInit::kSampledGaussian:
      return "sampled_gaussian";
  }
  return "unknown";
}

TtInit TtInitFromName(const std::string& name) {
  if (name == "uniform") return TtInit::kUniform;
  if (name == "gaussian") return TtInit::kGaussian;
  if (name == "sampled_gaussian") return TtInit::kSampledGaussian;
  throw ConfigError("unknown TT init strategy: " + name);
}

double PerCoreStddev(const TtShape& shape, double target_sigma2) {
  TTREC_CHECK_CONFIG(target_sigma2 > 0.0, "target variance must be positive");
  double rank_product = 1.0;
  for (size_t k = 1; k + 1 < shape.ranks.size(); ++k) {
    rank_product *= static_cast<double>(shape.ranks[k]);
  }
  const int d = shape.num_cores();
  return std::pow(target_sigma2 / rank_product, 1.0 / (2.0 * d));
}

void InitializeTtCoresWithTarget(TtCores& cores, TtInit init, Rng& rng,
                                 double target_sigma2, double tail_threshold) {
  const double s = PerCoreStddev(cores.shape(), target_sigma2);
  for (int k = 0; k < cores.num_cores(); ++k) {
    auto data = cores.core(k).span();
    switch (init) {
      case TtInit::kUniform: {
        // Uniform(-a, a) has variance a^2/3.
        const double a = s * std::sqrt(3.0);
        for (float& x : data) x = static_cast<float>(rng.Uniform(-a, a));
        break;
      }
      case TtInit::kGaussian: {
        for (float& x : data) x = static_cast<float>(rng.Normal(0.0, s));
        break;
      }
      case TtInit::kSampledGaussian: {
        // Algorithm 3: resample N(0,1) while |x| <= t, then rescale so the
        // core-entry variance is exactly s^2.
        const double scale = s / TailNormalStddev(tail_threshold);
        for (float& x : data) {
          x = static_cast<float>(rng.TruncatedTailNormal(tail_threshold) *
                                 scale);
        }
        break;
      }
    }
  }
}

void InitializeTtCores(TtCores& cores, TtInit init, Rng& rng,
                       double tail_threshold) {
  // DLRM-compatible target: approximate Uniform(-1/sqrt(M), 1/sqrt(M)),
  // whose KL-optimal Gaussian is N(0, 1/(3M)).
  const double target_sigma2 =
      1.0 / (3.0 * static_cast<double>(cores.num_rows()));
  InitializeTtCoresWithTarget(cores, init, rng, target_sigma2, tail_threshold);
}

}  // namespace ttrec
