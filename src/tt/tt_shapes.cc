#include "tt/tt_shapes.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/check.h"

namespace ttrec {

int64_t TtShape::CoreParams(int k) const {
  TTREC_CHECK_INDEX(k >= 0 && k < num_cores(), "core index out of range");
  return ranks[static_cast<size_t>(k)] * row_factors[static_cast<size_t>(k)] *
         col_factors[static_cast<size_t>(k)] *
         ranks[static_cast<size_t>(k) + 1];
}

int64_t TtShape::TotalParams() const {
  int64_t total = 0;
  for (int k = 0; k < num_cores(); ++k) total += CoreParams(k);
  return total;
}

double TtShape::CompressionRatio() const {
  return static_cast<double>(DenseParams()) /
         static_cast<double>(TotalParams());
}

std::vector<int64_t> TtShape::RowDigits(int64_t row) const {
  std::vector<int64_t> digits(static_cast<size_t>(num_cores()));
  RowDigitsInto(row, digits.data());
  return digits;
}

void TtShape::RowDigitsInto(int64_t row, int64_t* out) const {
  TTREC_CHECK_INDEX(row >= 0 && row < num_rows, "row ", row,
                    " out of range [0, ", num_rows, ")");
  for (int k = num_cores() - 1; k >= 0; --k) {
    const int64_t f = row_factors[static_cast<size_t>(k)];
    out[k] = row % f;
    row /= f;
  }
}

int64_t TtShape::RowFromDigits(const std::vector<int64_t>& digits) const {
  TTREC_CHECK_SHAPE(static_cast<int>(digits.size()) == num_cores(),
                    "digit count mismatch");
  int64_t row = 0;
  for (int k = 0; k < num_cores(); ++k) {
    const int64_t f = row_factors[static_cast<size_t>(k)];
    const int64_t dk = digits[static_cast<size_t>(k)];
    TTREC_CHECK_INDEX(dk >= 0 && dk < f, "digit out of range");
    row = row * f + dk;
  }
  return row;
}

void TtShape::Validate() const {
  const int d = num_cores();
  TTREC_CHECK_CONFIG(d >= 2, "TT shape needs at least 2 cores, got ", d);
  TTREC_CHECK_CONFIG(col_factors.size() == row_factors.size(),
                     "row/col factor counts differ");
  TTREC_CHECK_CONFIG(ranks.size() == row_factors.size() + 1,
                     "ranks must have num_cores + 1 entries");
  TTREC_CHECK_CONFIG(ranks.front() == 1 && ranks.back() == 1,
                     "boundary ranks must be 1");
  TTREC_CHECK_CONFIG(num_rows >= 1, "num_rows must be positive");
  TTREC_CHECK_CONFIG(emb_dim >= 1, "emb_dim must be positive");
  int64_t row_prod = 1;
  int64_t col_prod = 1;
  for (int k = 0; k < d; ++k) {
    TTREC_CHECK_CONFIG(row_factors[static_cast<size_t>(k)] >= 1 &&
                           col_factors[static_cast<size_t>(k)] >= 1,
                       "factors must be positive");
    TTREC_CHECK_CONFIG(ranks[static_cast<size_t>(k)] >= 1, "ranks must be >= 1");
    row_prod *= row_factors[static_cast<size_t>(k)];
    col_prod *= col_factors[static_cast<size_t>(k)];
  }
  TTREC_CHECK_CONFIG(row_prod >= num_rows,
                     "product of row factors (", row_prod,
                     ") must cover num_rows (", num_rows, ")");
  TTREC_CHECK_CONFIG(col_prod == emb_dim, "product of col factors (", col_prod,
                     ") must equal emb_dim (", emb_dim, ")");
}

std::string TtShape::ToString() const {
  std::ostringstream os;
  os << num_rows << "x" << emb_dim << " -> ";
  for (int k = 0; k < num_cores(); ++k) {
    if (k > 0) os << " * ";
    os << "(" << ranks[static_cast<size_t>(k)] << ","
       << row_factors[static_cast<size_t>(k)] << ","
       << col_factors[static_cast<size_t>(k)] << ","
       << ranks[static_cast<size_t>(k) + 1] << ")";
  }
  os << " [" << TotalParams() << " params, " << CompressionRatio()
     << "x reduction]";
  return os.str();
}

std::vector<int64_t> FactorizeRows(int64_t n, int num_factors) {
  TTREC_CHECK_CONFIG(n >= 1, "FactorizeRows: n must be positive");
  TTREC_CHECK_CONFIG(num_factors >= 1, "FactorizeRows: need >= 1 factor");
  std::vector<int64_t> factors;
  factors.reserve(static_cast<size_t>(num_factors));
  int64_t remaining = n;
  for (int k = num_factors; k >= 1; --k) {
    // Smallest f with f^k >= remaining.
    int64_t f = static_cast<int64_t>(
        std::ceil(std::pow(static_cast<double>(remaining), 1.0 / k)));
    while (f > 1) {  // fix any floating-point overshoot
      double p = 1.0;
      for (int i = 0; i < k; ++i) p *= static_cast<double>(f - 1);
      if (p >= static_cast<double>(remaining)) {
        --f;
      } else {
        break;
      }
    }
    factors.push_back(std::max<int64_t>(1, f));
    remaining = (remaining + f - 1) / f;  // ceil div
  }
  std::sort(factors.begin(), factors.end());
  return factors;
}

std::vector<int64_t> FactorizeCols(int64_t n, int num_factors) {
  TTREC_CHECK_CONFIG(n >= 1, "FactorizeCols: n must be positive");
  TTREC_CHECK_CONFIG(num_factors >= 1, "FactorizeCols: need >= 1 factor");
  // Prime factorization, then greedy assembly into `num_factors` balanced
  // buckets: repeatedly multiply the largest remaining prime into the
  // currently-smallest bucket.
  std::vector<int64_t> primes;
  int64_t m = n;
  for (int64_t p = 2; p * p <= m; ++p) {
    while (m % p == 0) {
      primes.push_back(p);
      m /= p;
    }
  }
  if (m > 1) primes.push_back(m);
  std::sort(primes.rbegin(), primes.rend());

  std::vector<int64_t> buckets(static_cast<size_t>(num_factors), 1);
  for (int64_t p : primes) {
    auto it = std::min_element(buckets.begin(), buckets.end());
    *it *= p;
  }
  std::sort(buckets.begin(), buckets.end());
  return buckets;
}

TtShape MakeTtShape(int64_t num_rows, int64_t emb_dim, int num_cores,
                    int64_t rank) {
  return MakeTtShapeExplicit(num_rows, emb_dim,
                             FactorizeRows(num_rows, num_cores),
                             FactorizeCols(emb_dim, num_cores), rank);
}

TtShape MakeTtShapeExplicit(int64_t num_rows, int64_t emb_dim,
                            std::vector<int64_t> row_factors,
                            std::vector<int64_t> col_factors, int64_t rank) {
  TTREC_CHECK_CONFIG(rank >= 1, "TT rank must be >= 1, got ", rank);
  TtShape shape;
  shape.num_rows = num_rows;
  shape.emb_dim = emb_dim;
  shape.row_factors = std::move(row_factors);
  shape.col_factors = std::move(col_factors);
  shape.ranks.assign(shape.row_factors.size() + 1, rank);
  shape.ranks.front() = 1;
  shape.ranks.back() = 1;
  shape.Validate();
  return shape;
}

}  // namespace ttrec
