// TT shapes for embedding-table compression (paper §2, Table 2).
//
// An M x N embedding table is reshaped into a 2d-dimensional tensor using
// row factors (m_1..m_d) with prod(m_k) >= M and column factors (n_1..n_d)
// with prod(n_k) == N, then decomposed into d TT cores
// G_k in R^{R_{k-1} x m_k x n_k x R_k}, R_0 = R_d = 1. This header holds the
// shape algebra: factorization, parameter counting, compression ratios, and
// mixed-radix row-index digit decomposition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ttrec {

/// Complete shape description of one TT-compressed embedding table.
struct TtShape {
  int64_t num_rows = 0;  // M (logical; prod(row_factors) may exceed it)
  int64_t emb_dim = 0;   // N == prod(col_factors)
  std::vector<int64_t> row_factors;  // m_1..m_d
  std::vector<int64_t> col_factors;  // n_1..n_d
  std::vector<int64_t> ranks;        // R_0..R_d with R_0 == R_d == 1

  int num_cores() const { return static_cast<int>(row_factors.size()); }

  /// Number of parameters in core k: R_{k-1} * m_k * n_k * R_k.
  int64_t CoreParams(int k) const;

  /// Total TT parameters across all cores.
  int64_t TotalParams() const;

  /// Uncompressed parameter count M * N.
  int64_t DenseParams() const { return num_rows * emb_dim; }

  /// Memory reduction factor: dense / TT parameters.
  double CompressionRatio() const;

  /// Decomposes a row index into mixed-radix digits (i_1..i_d) over the row
  /// factors, most-significant digit first — the index mapping of Eq. (3).
  std::vector<int64_t> RowDigits(int64_t row) const;

  /// Allocation-free RowDigits: writes num_cores() digits into `out`. The
  /// lookup hot path decodes one row per reconstructed embedding, so it
  /// must not allocate.
  void RowDigitsInto(int64_t row, int64_t* out) const;

  /// Inverse of RowDigits.
  int64_t RowFromDigits(const std::vector<int64_t>& digits) const;

  /// Throws ConfigError/ShapeError if the shape is internally inconsistent.
  void Validate() const;

  std::string ToString() const;
};

/// Builds a TT shape for an M x N table with `num_cores` cores and uniform
/// internal rank `rank` (R_0 = R_d = 1, all others = rank):
///   - row factors: near-balanced integers with product >= M (Table 2 style),
///   - column factors: a factorization of N into num_cores parts
///     (N must admit one; powers of two always do).
TtShape MakeTtShape(int64_t num_rows, int64_t emb_dim, int num_cores,
                    int64_t rank);

/// Same, with explicit factors (e.g. to reproduce the paper's Table 2 rows
/// exactly).
TtShape MakeTtShapeExplicit(int64_t num_rows, int64_t emb_dim,
                            std::vector<int64_t> row_factors,
                            std::vector<int64_t> col_factors, int64_t rank);

/// Near-balanced factors m_1 <= ... <= m_d with product >= n, each minimal
/// subject to covering the remainder. FactorizeRows(10131227, 3) gives
/// factors around 217 (the paper hand-picked (200, 220, 250); both cover M).
std::vector<int64_t> FactorizeRows(int64_t n, int num_factors);

/// Exact factorization of n into `num_factors` integer parts > 1 where
/// possible (trailing 1s allowed when n has too few prime factors), as
/// balanced as possible. Throws ConfigError if n < 1.
std::vector<int64_t> FactorizeCols(int64_t n, int num_factors);

}  // namespace ttrec
