// Quickstart: compress an embedding table with TT-Rec, look rows up, train
// it with SGD, and add the LFU cache — the 90-second tour of the API.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "cache/cached_tt_embedding.h"
#include "tt/tt_embedding.h"

using namespace ttrec;

int main() {
  // 1. Describe the table: 1M rows x 16 dims, 3 TT cores, rank 32.
  //    MakeTtShape picks balanced factorizations automatically.
  TtEmbeddingConfig config;
  config.shape = MakeTtShape(/*num_rows=*/1000000, /*emb_dim=*/16,
                             /*num_cores=*/3, /*rank=*/32);
  std::printf("shape: %s\n", config.shape.ToString().c_str());

  // 2. Create the operator. Cores are initialized with the paper's
  //    sampled-Gaussian scheme (Algorithm 3) so the materialized table
  //    matches DLRM's Uniform(-1/sqrt(M), 1/sqrt(M)) statistics.
  Rng rng(/*seed=*/42);
  TtEmbeddingBag emb(config, TtInit::kSampledGaussian, rng);
  std::printf("parameters: %lld floats (%.0fx smaller than dense)\n",
              static_cast<long long>(emb.shape().TotalParams()),
              emb.shape().CompressionRatio());

  // 3. Look up a batch: 3 bags in CSR form; bag 1 pools two rows.
  CsrBatch batch;
  batch.indices = {12, 999999, 345678, 7};
  batch.offsets = {0, 1, 3, 4};
  std::vector<float> out(static_cast<size_t>(batch.num_bags()) * 16);
  emb.Forward(batch, out.data());
  std::printf("bag 0 -> [%.4f, %.4f, %.4f, ...]\n", out[0], out[1], out[2]);

  // 4. Train: backward accumulates TT-core gradients (Algorithm 2), SGD
  //    folds them in.
  std::vector<float> grad(out.size(), 0.1f);
  emb.Backward(batch, grad.data());
  emb.ApplySgd(/*lr=*/0.05f);
  emb.Forward(batch, out.data());
  std::printf("after one SGD step -> [%.4f, %.4f, %.4f, ...]\n", out[0],
              out[1], out[2]);

  // 5. Production recipe: wrap with the LFU cache so the Zipf-hot rows are
  //    served (and trained) uncompressed.
  CachedTtConfig cached_config;
  cached_config.tt = config;
  cached_config.cache_capacity = 100;   // paper: 0.01% of the table
  cached_config.warmup_iterations = 3;  // tiny demo warm-up
  cached_config.refresh_interval = 1;
  Rng rng2(42);
  CachedTtEmbeddingBag cached(cached_config, TtInit::kSampledGaussian, rng2);
  for (int iter = 0; iter < 5; ++iter) {
    cached.Forward(batch, out.data());
    cached.Backward(batch, grad.data());
    cached.ApplySgd(0.05f);
  }
  std::printf("cached operator: %lld rows cached, hit rate %.0f%%\n",
              static_cast<long long>(cached.cache().size()),
              100.0 * cached.HitRate());
  std::printf("total memory: %.2f KB (dense would be %.2f MB)\n",
              cached.MemoryBytes() / 1e3,
              1000000 * 16 * 4 / 1e6);
  return 0;
}
