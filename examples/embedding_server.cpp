// Inference-style embedding serving: a TT-compressed table with the LFU
// cache answering Zipf-distributed lookup batches, reporting latency
// percentiles and the memory a serving replica would need — the "unlocks
// small-memory accelerators" story of the paper's introduction.
//
//   $ ./embedding_server [num_rows] [qps_batches]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cache/cached_tt_embedding.h"
#include "dlrm/embedding_bag.h"
#include "tensor/random.h"

using namespace ttrec;

int main(int argc, char** argv) {
  const int64_t rows = argc > 1 ? std::atoll(argv[1]) : 2000000;
  const int64_t num_batches = argc > 2 ? std::atoll(argv[2]) : 200;
  const int64_t dim = 16;
  const int64_t batch = 256;

  std::printf("serving a %lld x %lld embedding table, %lld batches of %lld "
              "lookups\n\n",
              static_cast<long long>(rows), static_cast<long long>(dim),
              static_cast<long long>(num_batches),
              static_cast<long long>(batch));

  CachedTtConfig cfg;
  cfg.tt.shape = MakeTtShape(rows, dim, 3, 32);
  cfg.cache_capacity = std::max<int64_t>(1, rows / 10000);  // 0.01%
  cfg.warmup_iterations = 20;
  cfg.refresh_interval = 5;
  Rng rng(7);
  CachedTtEmbeddingBag server(cfg, TtInit::kSampledGaussian, rng);

  // Production-like request stream: Zipf-skewed row popularity.
  ZipfSampler zipf(rows, 1.15);
  IndexShuffle shuffle(rows, 99);
  Rng req_rng(1);
  auto next_batch = [&] {
    std::vector<int64_t> idx(static_cast<size_t>(batch));
    for (int64_t& i : idx) i = shuffle.Map(zipf.Sample(req_rng));
    return CsrBatch::FromIndices(std::move(idx));
  };

  std::vector<float> out(static_cast<size_t>(batch * dim));
  // Warm-up phase: populate the cache from live traffic (paper Fig 4).
  for (int64_t i = 0; i <= cfg.warmup_iterations; ++i) {
    server.Forward(next_batch(), out.data());
  }
  server.ResetStats();

  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<size_t>(num_batches));
  for (int64_t i = 0; i < num_batches; ++i) {
    CsrBatch req = next_batch();
    const auto t0 = std::chrono::steady_clock::now();
    server.Forward(req, out.data());
    const auto t1 = std::chrono::steady_clock::now();
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  // Malformed requests: a serving replica must not crash on a bad id from
  // an upstream feature-pipeline bug. Sanitize under kClampToZero — the
  // offending lookups contribute zero vectors, the batch still completes.
  CsrBatch malformed = next_batch();
  malformed.indices[0] = rows + 123;  // stale id past the table
  malformed.indices[1] = -1;          // sentinel that leaked through
  const int64_t clamped = malformed.ApplyIndexPolicy(
      rows, IndexPolicy::kClampToZero, "serving_table");
  server.Forward(malformed, out.data());
  std::printf("malformed request served: %lld bad ids clamped to zero "
              "vectors\n",
              static_cast<long long>(clamped));
  // Training-side callers keep the strict policy and get a hard error:
  CsrBatch strict = next_batch();
  strict.indices[0] = rows;
  try {
    (void)strict.ApplyIndexPolicy(rows, IndexPolicy::kThrow, "serving_table");
  } catch (const IndexError& e) {
    std::printf("strict policy rejected the same request: %s\n\n", e.what());
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  auto pct = [&](double p) {
    return latencies_us[static_cast<size_t>(
        p * static_cast<double>(latencies_us.size() - 1))];
  };

  std::printf("cache: %lld rows (%.3f%% of table), hit rate %.1f%%\n",
              static_cast<long long>(server.cache().size()),
              100.0 * static_cast<double>(server.cache().size()) /
                  static_cast<double>(rows),
              100.0 * server.HitRate());
  std::printf("latency per %lld-lookup batch: p50 %.1f us, p95 %.1f us, "
              "p99 %.1f us\n",
              static_cast<long long>(batch), pct(0.50), pct(0.95), pct(0.99));
  std::printf("replica memory: %.2f MB (TT cores %.2f MB + cache %.2f MB); "
              "dense table would need %.2f MB\n",
              server.MemoryBytes() / 1e6, server.tt().MemoryBytes() / 1e6,
              server.cache().MemoryBytes() / 1e6, rows * dim * 4 / 1e6);
  return 0;
}
