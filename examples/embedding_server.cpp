// Inference serving on the src/serve/ subsystem: a DLRM whose largest table
// is TT-compressed with an LFU hot-row cache answers a Zipf-skewed request
// stream through the micro-batching InferenceServer — the "small-memory
// serving replica" story of the paper's introduction, end to end.
//
// Pipeline: concurrent clients Submit() single-sample requests; the bounded
// RequestQueue coalesces them into micro-batches; a consumer thread runs the
// read-only forward pass (TT lookup through the warm cache, pooling,
// interaction, MLPs) sharded across the thread pool; ServeMetrics reports
// QPS, latency percentiles, batch sizes, and cache hit rate.
//
//   $ ./embedding_server [num_rows] [num_requests]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "data/criteo_synth.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "serve/inference_server.h"
#include "tt/tt_shapes.h"

using namespace ttrec;

int main(int argc, char** argv) {
  const int64_t rows = argc > 1 ? std::atoll(argv[1]) : 2000000;
  const int64_t num_requests = argc > 2 ? std::atoll(argv[2]) : 2000;
  const int64_t dim = 16;
  const int num_small_tables = 3;
  const int64_t small_rows = 1000;

  std::printf("DLRM with one %lld x %lld cached-TT table + %d small dense "
              "tables, serving %lld requests\n\n",
              static_cast<long long>(rows), static_cast<long long>(dim),
              num_small_tables, static_cast<long long>(num_requests));

  // --- Model: the big table is TT-compressed + LFU-cached; a serving
  // replica tolerates bad ids (kClampToZero) instead of crashing on an
  // upstream feature-pipeline bug.
  Rng rng(7);
  DlrmConfig dlrm;
  dlrm.emb_dim = dim;
  dlrm.index_policy = IndexPolicy::kClampToZero;
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  {
    CachedTtConfig cfg;
    cfg.tt.shape = MakeTtShape(rows, dim, 3, 32);
    cfg.cache_capacity = std::max<int64_t>(1, rows / 10000);  // 0.01%
    cfg.warmup_iterations = 20;
    cfg.refresh_interval = 5;
    tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
        cfg, TtInit::kSampledGaussian, rng));
  }
  for (int t = 0; t < num_small_tables; ++t) {
    tables.push_back(std::make_unique<DenseEmbeddingBag>(
        small_rows, dim, PoolingMode::kSum,
        DenseEmbeddingInit::UniformScaled(), rng));
  }
  DlrmModel model(dlrm, std::move(tables), rng);

  // --- Zipf-skewed synthetic traffic over the model's table shapes.
  DatasetSpec spec;
  spec.name = "embedding_server";
  spec.table_rows = {rows, small_rows, small_rows, small_rows};
  SyntheticCriteoConfig data_cfg;
  data_cfg.spec = spec;
  data_cfg.seed = 1234;
  SyntheticCriteo data(data_cfg);

  // --- Warm-up: the training-path forward counts frequencies and
  // populates the cache from live traffic (paper Fig 4); once the window
  // closes the hot set freezes and serving is read-only.
  std::vector<float> warm_logits(256);
  for (int i = 0; i < 25; ++i) {
    model.PredictLogits(data.NextBatch(256), warm_logits.data());
  }
  auto& big = dynamic_cast<CachedTtEmbeddingAdapter&>(model.table(0));
  big.op().ResetStats();  // count serving traffic only
  std::printf("cache warmed: %lld rows (%.3f%% of table), frozen\n",
              static_cast<long long>(big.op().cache().size()),
              100.0 * static_cast<double>(big.op().cache().size()) /
                  static_cast<double>(rows));

  // --- Serve: 4 concurrent closed-loop clients, micro-batches up to 32.
  serve::InferenceServerConfig server_cfg;
  server_cfg.max_batch_size = 32;
  server_cfg.max_wait = std::chrono::microseconds(200);
  serve::InferenceServer server(model, server_cfg);

  const int num_clients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      // Same config seed as the warm-up stream: the Zipf rank->row shuffle
      // is seed-derived, and the frozen cache only pays off when clients
      // request the same hot rows it was warmed on. Traffic still differs
      // per client via the eval seed.
      SyntheticCriteo stream(data_cfg);
      uint64_t eval_seed = 5678 + 1000 * static_cast<uint64_t>(c);
      int64_t sent = 0;
      const int64_t quota = num_requests / num_clients;
      while (sent < quota) {
        const int64_t chunk = std::min<int64_t>(64, quota - sent);
        for (auto& req : serve::SplitSamples(stream.EvalBatch(chunk, eval_seed++))) {
          server.Submit(std::move(req)).get();
          ++sent;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // --- A malformed request (stale id past the table, leaked sentinel)
  // must complete under kClampToZero rather than crash the replica.
  {
    serve::InferenceRequest bad = serve::SplitSamples(data.NextBatch(1))[0];
    bad.sparse[0].indices[0] = rows + 123;
    const serve::InferenceResult res = server.Submit(std::move(bad)).get();
    std::printf("malformed request served: logit %.4f (bad id clamped to a "
                "zero vector)\n",
                res.logits[0]);
  }

  const serve::ServeMetricsSnapshot snap = server.SnapshotWithCacheStats();
  std::printf("\n%s\n\n", serve::ToJson(snap).c_str());
  std::printf("QPS %.0f | latency p50 %.0f us, p95 %.0f us, p99 %.0f us | "
              "mean micro-batch %.1f\n",
              snap.qps, snap.latency_p50_us, snap.latency_p95_us,
              snap.latency_p99_us, snap.mean_batch_size);
  std::printf("cache hit rate while serving: %.1f%%\n",
              100.0 * snap.cache_hit_rate);
  std::printf("replica embedding memory: %.2f MB; dense would need %.2f MB\n",
              model.EmbeddingMemoryBytes() / 1e6,
              (static_cast<double>(rows) + 3 * small_rows) * dim * 4 / 1e6);
  server.Shutdown();
  return 0;
}
