// Compress a pre-trained embedding table with TT-SVD and sweep the rank /
// error / size trade-off — the import path for models trained dense.
//
//   $ ./compress_table [num_rows] [emb_dim]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "tt/tt_decompose.h"
#include "tt/tt_embedding.h"

using namespace ttrec;

int main(int argc, char** argv) {
  const int64_t rows = argc > 1 ? std::atoll(argv[1]) : 20000;
  const int64_t dim = argc > 2 ? std::atoll(argv[2]) : 16;

  // Build the "pre-trained" table: a ground-truth TT model of rank 4 plus
  // element noise. Learned embedding tables compressed well by TT-SVD are
  // exactly those with (approximately) low TT rank under the paper's
  // interleaved (i_k, j_k) index grouping -- note this is NOT the same as
  // low matrix rank, which TT-SVD does not exploit.
  Rng rng(11);
  const int64_t latent = 4;
  Tensor table({rows, dim});
  {
    TtShape gen_shape = MakeTtShape(rows, dim, 3, latent);
    TtCores gen(gen_shape);
    InitializeTtCoresWithTarget(gen, TtInit::kGaussian, rng, 0.25);
    for (int64_t i = 0; i < rows; ++i) {
      gen.MaterializeRow(i, table.data() + i * dim);
    }
    for (int64_t i = 0; i < table.numel(); ++i) {
      table.data()[i] += static_cast<float>(rng.Normal(0.0, 0.01));
    }
  }

  std::printf("compressing a trained %lld x %lld table with TT-SVD\n\n",
              static_cast<long long>(rows), static_cast<long long>(dim));
  std::printf("%-8s %12s %12s %14s %16s\n", "rank", "params", "reduction",
              "rel. error", "max row error");
  for (int64_t rank : {1, 2, 4, 8, 16, 32}) {
    const TtShape shape = MakeTtShape(rows, dim, 3, rank);
    const TtCores cores = TtDecompose(table, shape);
    const double err = TtReconstructionError(table, cores);

    // Worst-case single-row error through the batched lookup kernel.
    TtEmbeddingConfig cfg;
    cfg.shape = cores.shape();
    TtEmbeddingBag emb(cfg, TtCores(cores));
    std::vector<int64_t> idx;
    for (int64_t i = 0; i < rows; i += std::max<int64_t>(1, rows / 256)) {
      idx.push_back(i);
    }
    std::vector<float> out(idx.size() * static_cast<size_t>(dim));
    emb.LookupRows(idx, out.data());
    double max_err = 0.0;
    for (size_t i = 0; i < idx.size(); ++i) {
      for (int64_t j = 0; j < dim; ++j) {
        max_err = std::max(
            max_err,
            std::abs(static_cast<double>(
                         out[i * static_cast<size_t>(dim) +
                             static_cast<size_t>(j)]) -
                     table.data()[idx[i] * dim + j]));
      }
    }
    std::printf("%-8lld %12lld %11.0fx %14.5f %16.5f\n",
                static_cast<long long>(rank),
                static_cast<long long>(cores.TotalParams()),
                static_cast<double>(rows * dim) /
                    static_cast<double>(cores.TotalParams()),
                err, max_err);
  }
  std::printf(
      "\nThe table is a TT model of rank %lld + noise: the error knee at "
      "rank ~%lld is the signal/noise boundary; ranks beyond it buy "
      "little.\n",
      static_cast<long long>(latent), static_cast<long long>(latent));
  return 0;
}
