// Train a full DLRM on the synthetic Criteo stream, comparing the dense
// baseline against TT-Rec and cached TT-Rec — the end-to-end workflow of
// the paper's evaluation.
//
//   $ ./train_dlrm [iterations] [scale_div] [lookahead]
//     iterations  SGD steps (default 300)
//     scale_div   divisor applied to the real Kaggle cardinalities
//                 (default 256; 1 = paper scale, slow on CPU)
//     lookahead   pipeline depth (default 0 = legacy inline loop; >= 1
//                 stages batches on a producer thread and prefetches the
//                 cached tables' rows ahead of the consumer — the stream,
//                 losses, and final model are bitwise identical per depth)
#include <cstdio>
#include <cstdlib>

#include "cache/cached_tt_embedding.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "dlrm/trainer.h"

using namespace ttrec;

namespace {

enum class Mode { kBaseline, kTt, kCachedTt };

std::unique_ptr<DlrmModel> BuildModel(Mode mode, const DatasetSpec& spec,
                                      const DlrmConfig& dlrm, Rng& rng) {
  // TT-compress the 7 largest tables (rank 32), keep the rest dense —
  // the paper's headline configuration.
  const std::vector<int> top7 = spec.LargestTables(7);
  std::vector<bool> is_tt(static_cast<size_t>(spec.num_tables()), false);
  if (mode != Mode::kBaseline) {
    for (int t : top7) is_tt[static_cast<size_t>(t)] = true;
  }
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  for (int t = 0; t < spec.num_tables(); ++t) {
    const int64_t rows = spec.table_rows[static_cast<size_t>(t)];
    if (!is_tt[static_cast<size_t>(t)]) {
      tables.push_back(std::make_unique<DenseEmbeddingBag>(
          rows, dlrm.emb_dim, PoolingMode::kSum,
          DenseEmbeddingInit::UniformScaled(), rng));
    } else if (mode == Mode::kTt) {
      TtEmbeddingConfig cfg;
      cfg.shape = MakeTtShape(rows, dlrm.emb_dim, 3, 32);
      tables.push_back(std::make_unique<TtEmbeddingAdapter>(
          cfg, TtInit::kSampledGaussian, rng));
    } else {
      CachedTtConfig cfg;
      cfg.tt.shape = MakeTtShape(rows, dlrm.emb_dim, 3, 32);
      cfg.cache_capacity = std::max<int64_t>(1, rows / 10000);
      cfg.warmup_iterations = 30;
      cfg.refresh_interval = 10;
      tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
          cfg, TtInit::kSampledGaussian, rng));
    }
  }
  return std::make_unique<DlrmModel>(dlrm, std::move(tables), rng);
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t iterations = argc > 1 ? std::atoll(argv[1]) : 300;
  const int64_t scale_div = argc > 2 ? std::atoll(argv[2]) : 256;
  const int64_t lookahead = argc > 3 ? std::atoll(argv[3]) : 0;

  const DatasetSpec spec = KaggleSpec().Scaled(scale_div);
  DlrmConfig dlrm;
  dlrm.emb_dim = 16;
  dlrm.bottom_hidden = {64, 32};
  dlrm.top_hidden = {64, 32};

  TrainConfig tc;
  tc.iterations = iterations;
  tc.batch_size = 128;
  tc.lr = 0.1f;
  tc.eval_batches = 4;
  tc.eval_batch_size = 1024;
  tc.log_every = std::max<int64_t>(1, iterations / 10);
  // Run guarded: skip non-finite batches, clip pathological gradients.
  // With a healthy stream neither guard fires and the numbers below are
  // identical to an unguarded run.
  tc.fault.check_non_finite = true;
  tc.fault.grad_clip_norm = 100.0f;
  tc.lookahead_depth = lookahead;
  tc.lookahead_threaded = lookahead > 0;

  std::printf("DLRM on synthetic Criteo-Kaggle (tables / %lld), %lld iters\n\n",
              static_cast<long long>(scale_div),
              static_cast<long long>(iterations));
  std::printf("%-12s %12s %10s %10s %10s %12s\n", "model", "emb memory",
              "accuracy%", "bce", "auc", "ms/iter");
  for (Mode mode : {Mode::kBaseline, Mode::kTt, Mode::kCachedTt}) {
    Rng rng(2026);
    SyntheticCriteoConfig dc;
    dc.spec = spec;
    dc.seed = 2026;
    SyntheticCriteo data(dc);
    auto model = BuildModel(mode, spec, dlrm, rng);
    const TrainResult r = TrainDlrm(*model, data, tc);
    const char* name = mode == Mode::kBaseline ? "baseline"
                       : mode == Mode::kTt     ? "tt-rec"
                                               : "tt-rec+cache";
    std::printf("%-12s %12.2f %10.3f %10.4f %10.4f %12.2f\n", name,
                model->EmbeddingMemoryBytes() / 1e6,
                100.0 * r.final_eval.accuracy, r.final_eval.loss,
                r.final_eval.auc, r.MsPerIteration());
    const RobustnessCounters& rb = r.robustness;
    if (rb.TotalSkips() + rb.clipped_steps + rb.rollbacks +
            rb.clamped_lookups >
        0) {
      std::printf("%-12s   guards: %lld skipped (%lld nan-loss, %lld "
                  "nan-grad, %lld spikes), %lld clipped, %lld rollbacks, "
                  "%lld clamped lookups\n",
                  "", static_cast<long long>(rb.TotalSkips()),
                  static_cast<long long>(rb.non_finite_loss_skips),
                  static_cast<long long>(rb.non_finite_grad_skips),
                  static_cast<long long>(rb.loss_spike_skips),
                  static_cast<long long>(rb.clipped_steps),
                  static_cast<long long>(rb.rollbacks),
                  static_cast<long long>(rb.clamped_lookups));
    }
    if (r.prefetched_rows > 0) {
      std::printf("%-12s   lookahead %lld: %lld rows prefetched, %.1f ms "
                  "prefetch time\n",
                  "", static_cast<long long>(lookahead),
                  static_cast<long long>(r.prefetched_rows),
                  1000.0 * r.prefetch_seconds);
    }
    if (rb.checkpoints_written > 0) {
      std::printf("%-12s   checkpoints: %lld written, %.1f ms overhead "
                  "(%.2f%% of train time)\n",
                  "", static_cast<long long>(rb.checkpoints_written),
                  1000.0 * r.checkpoint_seconds,
                  r.train_seconds > 0.0
                      ? 100.0 * r.checkpoint_seconds / r.train_seconds
                      : 0.0);
    }
  }
  std::printf("\n(emb memory in MB; all models share data seed and MLP "
              "init; runs are guarded — non-finite batches skipped, "
              "gradients clipped at 100)\n");
  return 0;
}
