// The full production workflow: train a TT-Rec DLRM with periodic
// full-training-state snapshots, "crash", resume from the newest valid
// snapshot (bit-identical to an uninterrupted run), survive a corrupted
// snapshot via rotation, then export one table's TT cores as a standalone
// artifact a serving replica can load.
//
//   $ ./checkpoint_workflow [workdir]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "dlrm/checkpoint.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "dlrm/trainer.h"
#include "tt/tt_io.h"

using namespace ttrec;

namespace {

std::unique_ptr<DlrmModel> BuildModel(const DatasetSpec& spec,
                                      const DlrmConfig& dlrm, uint64_t seed) {
  Rng rng(seed);
  const std::vector<int> top3 = spec.LargestTables(3);
  std::vector<bool> is_tt(static_cast<size_t>(spec.num_tables()), false);
  for (int t : top3) is_tt[static_cast<size_t>(t)] = true;
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  for (int t = 0; t < spec.num_tables(); ++t) {
    const int64_t rows = spec.table_rows[static_cast<size_t>(t)];
    if (is_tt[static_cast<size_t>(t)]) {
      TtEmbeddingConfig cfg;
      cfg.shape = MakeTtShape(rows, dlrm.emb_dim, 3, 16);
      tables.push_back(std::make_unique<TtEmbeddingAdapter>(
          cfg, TtInit::kSampledGaussian, rng));
    } else {
      tables.push_back(std::make_unique<DenseEmbeddingBag>(
          rows, dlrm.emb_dim, PoolingMode::kSum,
          DenseEmbeddingInit::UniformScaled(), rng));
    }
  }
  return std::make_unique<DlrmModel>(dlrm, std::move(tables), rng);
}

/// XOR one byte in place — simulated media corruption for phase 3.
void CorruptByte(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workdir = argc > 1 ? argv[1] : "/tmp";
  const std::string snap_dir = workdir + "/ttrec_snapshots";
  const std::string cores_path = workdir + "/ttrec_table.ttrc";

  const DatasetSpec spec = KaggleSpec().Scaled(1024);
  DlrmConfig dlrm;
  dlrm.emb_dim = 16;
  dlrm.bottom_hidden = {32};
  dlrm.top_hidden = {32};

  SyntheticCriteoConfig dc;
  dc.spec = spec;
  dc.seed = 2026;

  TrainConfig tc;
  tc.iterations = 150;
  tc.batch_size = 64;
  tc.lr = 0.1f;
  tc.eval_batches = 2;
  tc.eval_batch_size = 512;
  tc.log_every = 0;
  tc.checkpoint_every = 50;
  tc.checkpoint_dir = snap_dir;
  tc.checkpoint_keep_last = 2;
  tc.fault.check_non_finite = true;

  // Phase 1: train halfway, snapshotting every 50 iterations, then "crash"
  // (the process simply stops; the snapshots on disk are all that survive).
  {
    SyntheticCriteo data(dc);
    auto model = BuildModel(spec, dlrm, 1);
    TrainResult phase1 = TrainDlrm(*model, data, tc);
    std::printf("phase 1: %lld iters, accuracy %.3f%%, %lld snapshots "
                "(%.1f ms checkpoint overhead) -> crash\n",
                static_cast<long long>(tc.iterations),
                100.0 * phase1.final_eval.accuracy,
                static_cast<long long>(phase1.robustness.checkpoints_written),
                1000.0 * phase1.checkpoint_seconds);
  }

  // Phase 2: a NEW process — fresh model object with different random
  // init, fresh data stream — resumes from the newest valid snapshot. The
  // restored RNG cursor replays the exact batch sequence, so this run is
  // bit-identical to one that never crashed.
  auto resumed = BuildModel(spec, dlrm, 999);
  {
    SyntheticCriteo data(dc);
    TrainConfig rc = tc;
    rc.iterations = 300;
    rc.resume = true;
    TrainResult phase2 = TrainDlrm(*resumed, data, rc);
    std::printf("phase 2: resumed at iter %lld, trained to %lld, "
                "accuracy %.3f%%\n",
                static_cast<long long>(phase2.start_iteration),
                static_cast<long long>(rc.iterations),
                100.0 * phase2.final_eval.accuracy);
  }

  // Phase 3: corrupt the newest snapshot; recovery must reject it (CRC)
  // and fall back to the older one in the rotation.
  {
    CheckpointManagerConfig mc;
    mc.directory = snap_dir;
    mc.keep_last = 2;
    CheckpointManager manager(mc);
    const auto snaps = manager.ListSnapshots();
    if (!snaps.empty()) {
      CorruptByte(snaps.back(), 200);
      const SnapshotVerifyResult v = VerifySnapshotFile(snaps.back());
      std::printf("phase 3: corrupted %s -> verify says: %s\n",
                  snaps.back().c_str(), v.ok ? "ok (BUG!)" : v.error.c_str());
      auto recovered = BuildModel(spec, dlrm, 5);
      SyntheticCriteo data(dc);
      SnapshotMeta meta;
      if (manager.RestoreLatest(*recovered, data, &meta)) {
        std::printf("phase 3: recovery fell back to iteration %lld "
                    "(%zu snapshot(s) skipped)\n",
                    static_cast<long long>(meta.iteration),
                    manager.skipped().size());
      }
    }
  }

  // Phase 4: export one TT table's cores for a serving replica.
  const int tt_table = spec.LargestTables(1)[0];
  auto* adapter =
      dynamic_cast<TtEmbeddingAdapter*>(&resumed->table(tt_table));
  if (adapter != nullptr) {
    SaveTtCoresToFile(cores_path, adapter->tt().cores());
    TtCores serving = LoadTtCoresFromFile(cores_path);
    std::printf("exported table %d: %lld params -> %s; serving replica "
                "materializes row 0 = [%.4f, ...]\n",
                tt_table, static_cast<long long>(serving.TotalParams()),
                cores_path.c_str(), [&] {
                  std::vector<float> row(16);
                  serving.MaterializeRow(0, row.data());
                  return row[0];
                }());
  }
  std::remove(cores_path.c_str());
  std::filesystem::remove_all(snap_dir);
  return 0;
}
