// The full production workflow: train a TT-Rec DLRM, checkpoint it, resume
// training from the checkpoint, then export one table's TT cores as a
// standalone artifact a serving replica can load.
//
//   $ ./checkpoint_workflow [workdir]
#include <cstdio>
#include <string>

#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "dlrm/trainer.h"
#include "tt/tt_io.h"

using namespace ttrec;

namespace {

std::unique_ptr<DlrmModel> BuildModel(const DatasetSpec& spec,
                                      const DlrmConfig& dlrm, uint64_t seed) {
  Rng rng(seed);
  const std::vector<int> top3 = spec.LargestTables(3);
  std::vector<bool> is_tt(static_cast<size_t>(spec.num_tables()), false);
  for (int t : top3) is_tt[static_cast<size_t>(t)] = true;
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  for (int t = 0; t < spec.num_tables(); ++t) {
    const int64_t rows = spec.table_rows[static_cast<size_t>(t)];
    if (is_tt[static_cast<size_t>(t)]) {
      TtEmbeddingConfig cfg;
      cfg.shape = MakeTtShape(rows, dlrm.emb_dim, 3, 16);
      tables.push_back(std::make_unique<TtEmbeddingAdapter>(
          cfg, TtInit::kSampledGaussian, rng));
    } else {
      tables.push_back(std::make_unique<DenseEmbeddingBag>(
          rows, dlrm.emb_dim, PoolingMode::kSum,
          DenseEmbeddingInit::UniformScaled(), rng));
    }
  }
  return std::make_unique<DlrmModel>(dlrm, std::move(tables), rng);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workdir = argc > 1 ? argv[1] : "/tmp";
  const std::string ckpt_path = workdir + "/ttrec_dlrm.ckpt";
  const std::string cores_path = workdir + "/ttrec_table.ttrc";

  const DatasetSpec spec = KaggleSpec().Scaled(1024);
  DlrmConfig dlrm;
  dlrm.emb_dim = 16;
  dlrm.bottom_hidden = {32};
  dlrm.top_hidden = {32};

  SyntheticCriteoConfig dc;
  dc.spec = spec;
  dc.seed = 2026;
  SyntheticCriteo data(dc);

  // Phase 1: train and checkpoint.
  auto model = BuildModel(spec, dlrm, 1);
  TrainConfig tc;
  tc.iterations = 150;
  tc.batch_size = 64;
  tc.lr = 0.1f;
  tc.eval_batches = 2;
  tc.eval_batch_size = 512;
  tc.log_every = 0;
  TrainResult phase1 = TrainDlrm(*model, data, tc);
  model->SaveCheckpointToFile(ckpt_path);
  std::printf("phase 1: %lld iters, accuracy %.3f%% -> checkpoint %s\n",
              static_cast<long long>(tc.iterations),
              100.0 * phase1.final_eval.accuracy, ckpt_path.c_str());

  // Phase 2: resume in a "new process" (fresh model object, same arch).
  auto resumed = BuildModel(spec, dlrm, 999);  // different init, overwritten
  resumed->LoadCheckpointFromFile(ckpt_path);
  TrainResult phase2 = TrainDlrm(*resumed, data, tc);
  std::printf("phase 2 (resumed): +%lld iters, accuracy %.3f%%\n",
              static_cast<long long>(tc.iterations),
              100.0 * phase2.final_eval.accuracy);

  // Phase 3: export one TT table's cores for a serving replica.
  const int tt_table = spec.LargestTables(1)[0];
  auto* adapter =
      dynamic_cast<TtEmbeddingAdapter*>(&resumed->table(tt_table));
  if (adapter != nullptr) {
    SaveTtCoresToFile(cores_path, adapter->tt().cores());
    TtCores serving = LoadTtCoresFromFile(cores_path);
    std::printf("exported table %d: %lld params -> %s; serving replica "
                "materializes row 0 = [%.4f, ...]\n",
                tt_table, static_cast<long long>(serving.TotalParams()),
                cores_path.c_str(), [&] {
                  std::vector<float> row(16);
                  serving.MaterializeRow(0, row.data());
                  return row[0];
                }());
  }
  std::remove(ckpt_path.c_str());
  std::remove(cores_path.c_str());
  return 0;
}
