// Figure 3: probability density of the materialized-table entries under the
// different TT-core initializations, vs the target N(0, 1/(3n)).
//
// Left panel (paper): products of iid Uniform / N(0,1) factors spike at
// zero. Right panel: the sampled-Gaussian product tracks N(0, 1/(3n)).
// We report empirical KL to the target plus ASCII density sketches.
#include <cmath>
#include <cstdio>

#include "harness.h"
#include "tensor/stats.h"
#include "tt/tt_cores.h"
#include "tt/tt_init.h"

using namespace ttrec;
using namespace ttrec::bench;

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("fig3_init_pdf",
              "Paper Figure 3 (PDF of TT-core products vs sampled Gaussian)",
              env);

  // A mid-size table: n = 4096 rows, dim 16, 3 cores.
  const int64_t n = 4096;
  const TtShape shape =
      MakeTtShapeExplicit(n, 16, {16, 16, 16}, {2, 2, 4}, env.full ? 32 : 8);
  const double target_var = 1.0 / (3.0 * static_cast<double>(n));
  const double span = 3.5 * std::sqrt(target_var);

  std::printf("table: %s\n", shape.ToString().c_str());
  std::printf("target: N(0, 1/(3n)) = N(0, %.3g)\n\n", target_var);

  std::printf("%-18s %12s %12s %14s\n", "core init", "entry var",
              "var/target", "KL(emp||target)");
  for (TtInit init : {TtInit::kUniform, TtInit::kGaussian,
                      TtInit::kSampledGaussian}) {
    TtCores cores(shape);
    Rng rng(2024);
    InitializeTtCores(cores, init, rng);
    const Tensor full = cores.MaterializeFull();
    RunningMoments m;
    m.AddAll(full.span());
    Histogram h(-span, span, 81);
    h.AddAll(full.span());
    std::printf("%-18s %12.3e %12.3f %14.4f\n", TtInitName(init), m.variance(),
                m.variance() / target_var,
                KlHistogramVsGaussian(h, 0.0, target_var));
  }

  // Rank dependence of the sampled-Gaussian fit (the CLT smoothing effect:
  // the product is bimodal at rank 1 and converges to the Gaussian target
  // as the rank-summation averages it out).
  std::printf("\nKL(emp || target) vs TT rank:\n%-8s %12s %12s\n", "rank",
              "gaussian", "sampled");
  for (int64_t rank : {1, 2, 4, 8, 16, 32}) {
    const TtShape s = MakeTtShapeExplicit(n, 16, {16, 16, 16}, {2, 2, 4},
                                          rank);
    double kl_g = 0.0, kl_s = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      for (bool sampled : {false, true}) {
        TtCores cores(s);
        Rng rng(100 + static_cast<uint64_t>(rank) * 10 + rep);
        InitializeTtCores(cores,
                          sampled ? TtInit::kSampledGaussian
                                  : TtInit::kGaussian,
                          rng);
        const Tensor full = cores.MaterializeFull();
        Histogram h(-span, span, 81);
        h.AddAll(full.span());
        (sampled ? kl_s : kl_g) +=
            0.5 * KlHistogramVsGaussian(h, 0.0, target_var);
      }
    }
    std::printf("%-8lld %12.4f %12.4f\n", static_cast<long long>(rank), kl_g,
                kl_s);
  }

  // ASCII density sketch at the operating rank (8): gaussian product spikes,
  // sampled product is flat-ish near the target.
  for (TtInit init : {TtInit::kGaussian, TtInit::kSampledGaussian}) {
    TtCores cores(shape);
    Rng rng(7);
    InitializeTtCores(cores, init, rng);
    const Tensor full = cores.MaterializeFull();
    Histogram h(-span, span, 21);
    h.AddAll(full.span());
    std::printf("\n%s product density:\n%s", TtInitName(init),
                h.ToAscii(48).c_str());
  }
  std::printf(
      "\nExpected shape (paper Fig 3): gaussian/uniform products have a "
      "sharp spike at 0; the sampled-Gaussian product approximates "
      "N(0, 1/(3n)) closely at operating ranks (>= 4).\n");
  return 0;
}
