// Figure 8: system resource comparison of TT-Rec's TT-EmbeddingBag vs the
// T3nsor library vs PyTorch EmbeddingBag — lookup compute time and memory
// footprint as the number of embedding rows grows.
//
// T3nsor decompresses the whole table on the fly (working set = full
// table); TT-Rec's batched kernel touches ~batch_size x emb_dim, i.e.
// roughly #EmbRows/BatchSize less transient memory.
#include <cstdio>
#include <vector>

#include "baselines/t3nsor_embedding.h"
#include "dlrm/embedding_bag.h"
#include "harness.h"
#include "tt/tt_embedding.h"

using namespace ttrec;
using namespace ttrec::bench;

namespace {

CsrBatch UniformBatch(Rng& rng, int64_t rows, int64_t batch) {
  std::vector<int64_t> idx(static_cast<size_t>(batch));
  for (int64_t& i : idx) i = rng.RandInt(rows);
  return CsrBatch::FromIndices(std::move(idx));
}

template <typename Op>
double TimeForwardMs(Op& op, const CsrBatch& batch, int64_t emb_dim,
                     int reps) {
  std::vector<float> out(static_cast<size_t>(batch.num_bags() * emb_dim));
  op.Forward(batch, out.data());  // warm up
  WallTimer timer;
  for (int r = 0; r < reps; ++r) op.Forward(batch, out.data());
  return timer.Seconds() * 1000.0 / reps;
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("fig8_t3nsor",
              "Paper Figure 8 (TT-Rec vs T3nsor vs EmbeddingBag: compute + "
              "memory vs #rows)",
              env);

  const int64_t dim = 16;
  const int64_t batch = 512;
  const int64_t rank = 32;
  const std::vector<int64_t> row_counts =
      env.full ? std::vector<int64_t>{20000, 100000, 500000, 2000000}
               : std::vector<int64_t>{10000, 50000, 200000};
  const int reps = env.full ? 3 : 5;

  std::printf("batch = %lld lookups, dim = %lld, rank = %lld\n\n",
              static_cast<long long>(batch), static_cast<long long>(dim),
              static_cast<long long>(rank));
  std::printf("%-10s | %12s %12s %12s | %14s %14s %14s\n", "#rows",
              "EmbBag ms", "TT-Rec ms", "T3nsor ms", "EmbBag mem",
              "TT-Rec mem", "T3nsor mem");
  for (int64_t rows : row_counts) {
    Rng rng(rows);
    CsrBatch lookup = UniformBatch(rng, rows, batch);

    DenseEmbeddingBag dense(rows, dim, PoolingMode::kSum,
                            DenseEmbeddingInit::UniformScaled(), rng);
    TtEmbeddingConfig tcfg;
    tcfg.shape = MakeTtShape(rows, dim, 3, rank);
    TtEmbeddingBag tt(tcfg, TtInit::kSampledGaussian, rng);
    T3nsorEmbeddingBag t3(tcfg, TtInit::kSampledGaussian, rng);

    const double dense_ms = TimeForwardMs(dense, lookup, dim, reps);
    const double tt_ms = TimeForwardMs(tt, lookup, dim, reps);
    const double t3_ms = TimeForwardMs(t3, lookup, dim, reps);

    // Memory: parameters + transient working set of one forward.
    const int64_t dense_mem = dense.MemoryBytes();
    const int64_t tt_mem = tt.MemoryBytes() + tt.WorkspaceBytes();
    const int64_t t3_mem = t3.MemoryBytes() + t3.WorkingSetBytes();

    std::printf("%-10lld | %12.3f %12.3f %12.3f | %14s %14s %14s\n",
                static_cast<long long>(rows), dense_ms, tt_ms, t3_ms,
                FormatBytes(dense_mem).c_str(), FormatBytes(tt_mem).c_str(),
                FormatBytes(t3_mem).c_str());
  }
  std::printf(
      "\nExpected shape (paper Fig 8): T3nsor time and memory grow with "
      "#rows (full decompression); TT-Rec time is ~flat in #rows and its "
      "memory stays orders of magnitude below both (footprint ~ "
      "#rows/batch smaller than T3nsor/EmbeddingBag); EmbeddingBag is "
      "fastest per lookup but its parameter memory grows linearly.\n");
  return 0;
}
