// Figure 5: total embedding model size, baseline vs TT-Rec, when the 3 / 5 /
// 7 largest tables are TT-compressed (rank 32), for Kaggle and Terabyte.
// Exact arithmetic over the real dataset cardinalities — these numbers
// should match the paper's headline reductions (e.g. Kaggle 7-table ~117x
// overall model compression at R=32).
#include <cstdio>

#include "dlrm/capacity_planner.h"
#include "harness.h"
#include "tt/tt_shapes.h"

using namespace ttrec;
using namespace ttrec::bench;

namespace {

void ReportDataset(const DatasetSpec& spec, int64_t emb_dim, int64_t rank) {
  const int64_t dense_total = DenseEmbeddingBytes(spec, emb_dim);
  std::printf("\n%s: baseline embedding size %s (dim %lld)\n",
              spec.name.c_str(), FormatBytes(dense_total).c_str(),
              static_cast<long long>(emb_dim));
  std::printf("%-10s %16s %16s %12s\n", "TT-Emb. of", "TT-Rec size",
              "compressed part", "reduction");
  for (int k : {3, 5, 7}) {
    const std::vector<int> top = spec.LargestTables(k);
    std::vector<bool> is_tt(static_cast<size_t>(spec.num_tables()), false);
    for (int t : top) is_tt[static_cast<size_t>(t)] = true;
    int64_t total = 0;
    int64_t compressed_dense = 0;
    int64_t compressed_tt = 0;
    for (int t = 0; t < spec.num_tables(); ++t) {
      const int64_t rows = spec.table_rows[static_cast<size_t>(t)];
      const int64_t dense_bytes =
          rows * emb_dim * static_cast<int64_t>(sizeof(float));
      if (is_tt[static_cast<size_t>(t)]) {
        std::vector<int64_t> factors = PaperRowFactors(rows);
        if (factors.empty()) factors = FactorizeRows(rows, 3);
        const TtShape shape = MakeTtShapeExplicit(
            rows, emb_dim, factors, FactorizeCols(emb_dim, 3), rank);
        const int64_t tt_bytes =
            shape.TotalParams() * static_cast<int64_t>(sizeof(float));
        total += tt_bytes;
        compressed_dense += dense_bytes;
        compressed_tt += tt_bytes;
      } else {
        total += dense_bytes;
      }
    }
    std::printf("%-10d %16s %16s %11.1fx\n", k, FormatBytes(total).c_str(),
                FormatBytes(compressed_tt).c_str(),
                static_cast<double>(dense_total) /
                    static_cast<double>(total));
    (void)compressed_dense;
  }
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("fig5_memory",
              "Paper Figure 5 + §6/§6.1 headline compression (model size vs "
              "#tables compressed, R=32)",
              env);
  ReportDataset(KaggleSpec(), 16, 32);
  ReportDataset(TerabyteSpec(), 16, 32);

  // Design-space navigation (paper conclusion): given a device memory
  // budget, the capacity planner picks which tables to compress and at
  // what rank.
  std::printf("\nCapacity planner: fit Kaggle (dim 16) into a budget\n");
  std::printf("%-12s %14s %10s %12s %8s\n", "budget", "planned size",
              "ratio", "#tt tables", "fits");
  for (int64_t budget_mb : {2048, 512, 128, 64, 24, 8}) {
    const CapacityPlan plan =
        PlanCapacity(KaggleSpec(), 16, budget_mb * 1000000);
    int compressed = 0;
    for (const TablePlan& t : plan.tables) {
      if (t.compress) ++compressed;
    }
    std::printf("%-9lld MB %14s %9.1fx %12d %8s\n",
                static_cast<long long>(budget_mb),
                FormatBytes(plan.total_bytes).c_str(),
                plan.CompressionRatio(), compressed,
                plan.fits ? "yes" : "NO");
  }

  std::printf(
      "\nExpected shape (paper): Kaggle overall reduction ~4x / ~48x / "
      "~117x for 3/5/7 tables; Terabyte ~2.6x / ~21.8x / ~95.5x; the 7 "
      "largest tables dominate (>99%% of capacity). The planner mirrors "
      "this: tighter budgets pull in more tables, then lower ranks.\n");
  return 0;
}
