// google-benchmark microbenchmarks for the hot kernels: GEMM, batched GEMM,
// TT-EmbeddingBag forward/backward, row materialization, cache probes, and
// Zipf sampling. These are the building blocks behind Figures 7/8/11/12.
#include <benchmark/benchmark.h>

#include <vector>

#include "cache/freq_tracker.h"
#include "cache/lfu_cache.h"
#include "data/csr_batch.h"
#include "tensor/batched_gemm.h"
#include "tensor/gemm.h"
#include "tensor/random.h"
#include "tt/tt_embedding.h"

namespace ttrec {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t n = state.range(1);
  const int64_t k = state.range(2);
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  std::vector<float> c(static_cast<size_t>(m * n));
  FillUniform(rng, a, -1, 1);
  FillUniform(rng, b, -1, 1);
  for (auto _ : state) {
    Gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
         c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_Gemm)
    ->Args({4, 64, 32})    // TT stage shape (prod-n x n*R, rank 32)
    ->Args({16, 128, 64})
    ->Args({64, 64, 64})
    ->Args({256, 256, 256});

void BM_BatchedGemmTtStage(benchmark::State& state) {
  // The stage-2 launch of a rank-R TT lookup batch.
  const int64_t batch = state.range(0);
  const int64_t rank = state.range(1);
  const int64_t m = 2, n = 2 * rank, k = rank;
  Rng rng(2);
  std::vector<float> a(static_cast<size_t>(batch * m * k));
  std::vector<float> b(static_cast<size_t>(batch * k * n));
  std::vector<float> c(static_cast<size_t>(batch * m * n));
  FillUniform(rng, a, -1, 1);
  FillUniform(rng, b, -1, 1);
  std::vector<const float*> ap, bp;
  std::vector<float*> cp;
  for (int64_t i = 0; i < batch; ++i) {
    ap.push_back(a.data() + i * m * k);
    bp.push_back(b.data() + i * k * n);
    cp.push_back(c.data() + i * m * n);
  }
  BatchedGemmShape shape;
  shape.m = m;
  shape.n = n;
  shape.k = k;
  for (auto _ : state) {
    BatchedGemm(shape, ap, bp, cp);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedGemmTtStage)
    ->Args({512, 8})
    ->Args({512, 32})
    ->Args({512, 64})
    ->Args({4096, 32});

TtEmbeddingBag MakeBenchEmbedding(int64_t rows, int64_t rank) {
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(rows, 16, 3, rank);
  Rng rng(3);
  return TtEmbeddingBag(cfg, TtInit::kSampledGaussian, rng);
}

CsrBatch MakeLookupBatch(int64_t rows, int64_t batch) {
  Rng rng(4);
  std::vector<int64_t> idx(static_cast<size_t>(batch));
  for (int64_t& i : idx) i = rng.RandInt(rows);
  return CsrBatch::FromIndices(std::move(idx));
}

void BM_TtEmbeddingForward(benchmark::State& state) {
  const int64_t rows = 1000000;
  const int64_t rank = state.range(0);
  const int64_t batch = state.range(1);
  TtEmbeddingBag emb = MakeBenchEmbedding(rows, rank);
  CsrBatch lookup = MakeLookupBatch(rows, batch);
  std::vector<float> out(static_cast<size_t>(batch * 16));
  for (auto _ : state) {
    emb.Forward(lookup, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TtEmbeddingForward)
    ->Args({8, 512})
    ->Args({32, 512})
    ->Args({64, 512})
    ->Args({32, 4096});

void BM_TtEmbeddingBackwardSgd(benchmark::State& state) {
  const int64_t rows = 1000000;
  const int64_t rank = state.range(0);
  const int64_t batch = 512;
  TtEmbeddingBag emb = MakeBenchEmbedding(rows, rank);
  CsrBatch lookup = MakeLookupBatch(rows, batch);
  std::vector<float> out(static_cast<size_t>(batch * 16));
  std::vector<float> grad(out.size(), 1.0f);
  emb.Forward(lookup, out.data());
  for (auto _ : state) {
    emb.Backward(lookup, grad.data());
    emb.ApplySgd(0.01f);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TtEmbeddingBackwardSgd)->Arg(8)->Arg(32)->Arg(64);

void BM_MaterializeRow(benchmark::State& state) {
  TtEmbeddingBag emb = MakeBenchEmbedding(1000000, state.range(0));
  std::vector<float> row(16);
  int64_t i = 0;
  for (auto _ : state) {
    emb.cores().MaterializeRow(i % 1000000, row.data());
    i += 7919;
    benchmark::DoNotOptimize(row.data());
  }
}
BENCHMARK(BM_MaterializeRow)->Arg(8)->Arg(32)->Arg(64);

void BM_FreqTrackerIncrement(benchmark::State& state) {
  FreqTracker tracker;
  Rng rng(5);
  ZipfSampler zipf(1000000, 1.15);
  for (auto _ : state) {
    tracker.Increment(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreqTrackerIncrement);

void BM_LfuCacheFind(benchmark::State& state) {
  const int64_t cap = 1024;
  LfuRowCache cache(cap, 16);
  std::vector<int64_t> rows(static_cast<size_t>(cap));
  for (int64_t i = 0; i < cap; ++i) rows[static_cast<size_t>(i)] = i * 3;
  std::vector<float> vals(static_cast<size_t>(cap * 16), 1.0f);
  cache.Populate(rows, vals.data());
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Find(rng.RandInt(4096)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LfuCacheFind);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(state.range(0), 1.15);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(10000)->Arg(10000000);

}  // namespace
}  // namespace ttrec

BENCHMARK_MAIN();
