// google-benchmark microbenchmarks for the hot kernels: GEMM, batched GEMM,
// TT-EmbeddingBag forward/backward, row materialization, cache probes, and
// Zipf sampling. These are the building blocks behind Figures 7/8/11/12.
//
// `--json out.json` switches to a machine-readable thread-count sweep of the
// block-parallel TT kernels (GFLOP/s and lookups/s per pool size, plus a
// cross-thread determinism check) — the BENCH_kernels.json artifact CI
// uploads so the perf trajectory populates. All other flags pass through to
// google-benchmark.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cache/freq_tracker.h"
#include "cache/lfu_cache.h"
#include "data/csr_batch.h"
#include "obs/json_writer.h"
#include "tensor/batched_gemm.h"
#include "tensor/gemm.h"
#include "tensor/parallel.h"
#include "tensor/random.h"
#include "tt/tt_embedding.h"

namespace ttrec {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t n = state.range(1);
  const int64_t k = state.range(2);
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  std::vector<float> c(static_cast<size_t>(m * n));
  FillUniform(rng, a, -1, 1);
  FillUniform(rng, b, -1, 1);
  for (auto _ : state) {
    Gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
         c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_Gemm)
    ->Args({4, 64, 32})    // TT stage shape (prod-n x n*R, rank 32)
    ->Args({16, 128, 64})
    ->Args({64, 64, 64})
    ->Args({256, 256, 256});

void BM_BatchedGemmTtStage(benchmark::State& state) {
  // The stage-2 launch of a rank-R TT lookup batch.
  const int64_t batch = state.range(0);
  const int64_t rank = state.range(1);
  const int64_t m = 2, n = 2 * rank, k = rank;
  Rng rng(2);
  std::vector<float> a(static_cast<size_t>(batch * m * k));
  std::vector<float> b(static_cast<size_t>(batch * k * n));
  std::vector<float> c(static_cast<size_t>(batch * m * n));
  FillUniform(rng, a, -1, 1);
  FillUniform(rng, b, -1, 1);
  std::vector<const float*> ap, bp;
  std::vector<float*> cp;
  for (int64_t i = 0; i < batch; ++i) {
    ap.push_back(a.data() + i * m * k);
    bp.push_back(b.data() + i * k * n);
    cp.push_back(c.data() + i * m * n);
  }
  BatchedGemmShape shape;
  shape.m = m;
  shape.n = n;
  shape.k = k;
  for (auto _ : state) {
    BatchedGemm(shape, ap, bp, cp);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedGemmTtStage)
    ->Args({512, 8})
    ->Args({512, 32})
    ->Args({512, 64})
    ->Args({4096, 32});

TtEmbeddingBag MakeBenchEmbedding(int64_t rows, int64_t rank) {
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(rows, 16, 3, rank);
  Rng rng(3);
  return TtEmbeddingBag(cfg, TtInit::kSampledGaussian, rng);
}

CsrBatch MakeLookupBatch(int64_t rows, int64_t batch) {
  Rng rng(4);
  std::vector<int64_t> idx(static_cast<size_t>(batch));
  for (int64_t& i : idx) i = rng.RandInt(rows);
  return CsrBatch::FromIndices(std::move(idx));
}

void BM_TtEmbeddingForward(benchmark::State& state) {
  const int64_t rows = 1000000;
  const int64_t rank = state.range(0);
  const int64_t batch = state.range(1);
  TtEmbeddingBag emb = MakeBenchEmbedding(rows, rank);
  CsrBatch lookup = MakeLookupBatch(rows, batch);
  std::vector<float> out(static_cast<size_t>(batch * 16));
  for (auto _ : state) {
    emb.Forward(lookup, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TtEmbeddingForward)
    ->Args({8, 512})
    ->Args({32, 512})
    ->Args({64, 512})
    ->Args({32, 4096});

void BM_TtEmbeddingBackwardSgd(benchmark::State& state) {
  const int64_t rows = 1000000;
  const int64_t rank = state.range(0);
  const int64_t batch = 512;
  TtEmbeddingBag emb = MakeBenchEmbedding(rows, rank);
  CsrBatch lookup = MakeLookupBatch(rows, batch);
  std::vector<float> out(static_cast<size_t>(batch * 16));
  std::vector<float> grad(out.size(), 1.0f);
  emb.Forward(lookup, out.data());
  for (auto _ : state) {
    emb.Backward(lookup, grad.data());
    emb.ApplySgd(0.01f);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TtEmbeddingBackwardSgd)->Arg(8)->Arg(32)->Arg(64);

void BM_MaterializeRow(benchmark::State& state) {
  TtEmbeddingBag emb = MakeBenchEmbedding(1000000, state.range(0));
  std::vector<float> row(16);
  int64_t i = 0;
  for (auto _ : state) {
    emb.cores().MaterializeRow(i % 1000000, row.data());
    i += 7919;
    benchmark::DoNotOptimize(row.data());
  }
}
BENCHMARK(BM_MaterializeRow)->Arg(8)->Arg(32)->Arg(64);

void BM_FreqTrackerIncrement(benchmark::State& state) {
  FreqTracker tracker;
  Rng rng(5);
  ZipfSampler zipf(1000000, 1.15);
  for (auto _ : state) {
    tracker.Increment(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreqTrackerIncrement);

void BM_LfuCacheFind(benchmark::State& state) {
  const int64_t cap = 1024;
  LfuRowCache cache(cap, 16);
  std::vector<int64_t> rows(static_cast<size_t>(cap));
  for (int64_t i = 0; i < cap; ++i) rows[static_cast<size_t>(i)] = i * 3;
  std::vector<float> vals(static_cast<size_t>(cap * 16), 1.0f);
  cache.Populate(rows, vals.data());
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Find(rng.RandInt(4096)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LfuCacheFind);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(state.range(0), 1.15);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(10000)->Arg(10000000);

// --json mode: a Criteo-shape thread-count sweep of the block-parallel TT
// kernels. Times whole-table forward and forward+backward+SGD at pool sizes
// {1, 2, 4, 8}, derives GFLOP/s from the operator's own FLOP counters, and
// verifies the forward output is bitwise identical across all pool sizes
// (the determinism contract of DESIGN.md "Kernel parallelism").
int RunKernelJsonSweep(const std::string& path) {
  const int64_t rows = 1000000;
  const int64_t rank = 32;
  const int64_t batch = 4096;
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const int reps = 5;

  struct SweepRow {
    int threads = 0;
    double fwd_ms = 0.0, fwd_gflops = 0.0, fwd_lookups_per_s = 0.0;
    double fwdbwd_ms = 0.0, fwdbwd_gflops = 0.0, fwdbwd_lookups_per_s = 0.0;
  };
  std::vector<SweepRow> rowsout;
  std::vector<float> ref_out;
  bool deterministic = true;
  int64_t block_size = 0;

  using Clock = std::chrono::steady_clock;
  auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  for (int threads : thread_counts) {
    ThreadPool::SetGlobalThreads(threads);
    TtEmbeddingBag emb = MakeBenchEmbedding(rows, rank);
    block_size = emb.config().block_size;
    CsrBatch lookup = MakeLookupBatch(rows, batch);
    std::vector<float> out(static_cast<size_t>(batch * 16));
    std::vector<float> grad(out.size(), 1.0f);

    emb.Forward(lookup, out.data());  // warm-up + determinism probe
    if (ref_out.empty()) {
      ref_out = out;
    } else if (std::memcmp(ref_out.data(), out.data(),
                           out.size() * sizeof(float)) != 0) {
      deterministic = false;
    }

    SweepRow row;
    row.threads = threads;
    const TtEmbeddingStats before_fwd = emb.stats();
    auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) emb.Forward(lookup, out.data());
    row.fwd_ms = ms_since(t0) / reps;
    const int64_t fwd_flops =
        (emb.stats().forward_flops - before_fwd.forward_flops) / reps;
    row.fwd_gflops = static_cast<double>(fwd_flops) / (row.fwd_ms * 1e6);
    row.fwd_lookups_per_s = static_cast<double>(batch) / (row.fwd_ms * 1e-3);

    const TtEmbeddingStats before_bwd = emb.stats();
    t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      emb.Forward(lookup, out.data());
      emb.Backward(lookup, grad.data());
      emb.ApplySgd(0.01f);
    }
    row.fwdbwd_ms = ms_since(t0) / reps;
    const int64_t step_flops =
        (emb.stats().forward_flops - before_bwd.forward_flops +
         emb.stats().backward_flops - before_bwd.backward_flops) /
        reps;
    row.fwdbwd_gflops = static_cast<double>(step_flops) / (row.fwdbwd_ms * 1e6);
    row.fwdbwd_lookups_per_s =
        static_cast<double>(batch) / (row.fwdbwd_ms * 1e-3);
    rowsout.push_back(row);

    std::printf(
        "threads=%d  fwd %.2f ms (%.2f GFLOP/s)  fwd+bwd+sgd %.2f ms "
        "(%.2f GFLOP/s)\n",
        threads, row.fwd_ms, row.fwd_gflops, row.fwdbwd_ms,
        row.fwdbwd_gflops);
  }

  // Shared BENCH_*.json envelope (obs/json_writer.h); field names below are
  // the stable contract CI consumers parse — only schema_version is new.
  obs::JsonWriter w;
  obs::BeginBenchEnvelope(w, "kernel_microbench");
  w.Key("table").BeginObject();
  w.Kv("rows", rows).Kv("emb_dim", 16).Kv("num_cores", 3);
  w.Kv("rank", rank).Kv("batch", batch).Kv("block_size", block_size);
  w.EndObject();
  w.Kv("hardware_concurrency", std::thread::hardware_concurrency());
  w.Kv("deterministic_across_threads", deterministic);
  w.Key("results").BeginArray();
  for (const SweepRow& r : rowsout) {
    w.BeginObject();
    w.Kv("threads", r.threads);
    w.Kv("forward_ms", r.fwd_ms, 4);
    w.Kv("forward_gflops", r.fwd_gflops, 4);
    w.Kv("forward_lookups_per_s", r.fwd_lookups_per_s, 1);
    w.Kv("fwdbwd_ms", r.fwdbwd_ms, 4);
    w.Kv("fwdbwd_gflops", r.fwdbwd_gflops, 4);
    w.Kv("fwdbwd_lookups_per_s", r.fwdbwd_lookups_per_s, 1);
    w.Kv("fwd_speedup_vs_1t", rowsout[0].fwd_ms / r.fwd_ms, 3);
    w.Kv("fwdbwd_speedup_vs_1t", rowsout[0].fwdbwd_ms / r.fwdbwd_ms, 3);
    w.EndObject();
  }
  w.EndArray().EndObject();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(w.str().data(), 1, w.str().size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s (deterministic across threads: %s)\n", path.c_str(),
              deterministic ? "yes" : "NO");
  return deterministic ? 0 : 2;
}

}  // namespace
}  // namespace ttrec

// Custom main: peel off `--json <path>` (google-benchmark rejects unknown
// flags) before handing the rest to the standard benchmark driver.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    return ttrec::RunKernelJsonSweep(json_path);
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
