// google-benchmark microbenchmarks for the hot kernels: GEMM, batched GEMM,
// TT-EmbeddingBag forward/backward, row materialization, cache probes, and
// Zipf sampling. These are the building blocks behind Figures 7/8/11/12.
// Compute kernels report achieved FLOP/s and bytes/s counters, not just
// wall time.
//
// `--json out.json` switches to the machine-readable sweep behind the
// BENCH_kernels.json artifact CI uploads: a thread-count sweep of the
// block-parallel TT kernels (GFLOP/s and lookups/s per pool size, plus a
// cross-thread determinism check) and a SIMD-tier sweep (scalar vs AVX2 vs
// AVX-512 on the TT GEMM chain and the fused vs staged lookup pipeline,
// with speedups over the scalar tier and a fused==staged bitwise gate).
// The envelope stamps the CPU model and dispatch tier so the numbers are
// attributable. All other flags pass through to google-benchmark.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "cache/freq_tracker.h"
#include "cache/lfu_cache.h"
#include "data/csr_batch.h"
#include "obs/json_writer.h"
#include "tensor/batched_gemm.h"
#include "tensor/cpu_features.h"
#include "tensor/gemm.h"
#include "tensor/parallel.h"
#include "tensor/random.h"
#include "tt/tt_embedding.h"

namespace ttrec {
namespace {

/// Attaches achieved-rate counters: google-benchmark divides kIsRate
/// counters by wall time, so pass totals across all iterations.
void SetRateCounters(benchmark::State& state, int64_t flops_per_iter,
                     int64_t bytes_per_iter) {
  state.counters["FLOP/s"] = benchmark::Counter(
      static_cast<double>(flops_per_iter * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(bytes_per_iter * state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_Gemm(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t n = state.range(1);
  const int64_t k = state.range(2);
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  std::vector<float> c(static_cast<size_t>(m * n));
  FillUniform(rng, a, -1, 1);
  FillUniform(rng, b, -1, 1);
  for (auto _ : state) {
    Gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
         c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
  SetRateCounters(state, 2 * m * n * k,
                  (m * k + k * n + m * n) * static_cast<int64_t>(4));
}
BENCHMARK(BM_Gemm)
    ->Args({2, 64, 32})    // TT stage 1 of a 3-core dim-16 rank-32 table
    ->Args({4, 4, 32})     // TT stage 2 (ragged tail) of the same table
    ->Args({16, 128, 64})
    ->Args({64, 64, 64})
    ->Args({256, 256, 256});

void BM_BatchedGemmTtStage(benchmark::State& state) {
  // The stage-2 launch of a rank-R TT lookup batch.
  const int64_t batch = state.range(0);
  const int64_t rank = state.range(1);
  const int64_t m = 2, n = 2 * rank, k = rank;
  Rng rng(2);
  std::vector<float> a(static_cast<size_t>(batch * m * k));
  std::vector<float> b(static_cast<size_t>(batch * k * n));
  std::vector<float> c(static_cast<size_t>(batch * m * n));
  FillUniform(rng, a, -1, 1);
  FillUniform(rng, b, -1, 1);
  std::vector<const float*> ap, bp;
  std::vector<float*> cp;
  for (int64_t i = 0; i < batch; ++i) {
    ap.push_back(a.data() + i * m * k);
    bp.push_back(b.data() + i * k * n);
    cp.push_back(c.data() + i * m * n);
  }
  BatchedGemmShape shape;
  shape.m = m;
  shape.n = n;
  shape.k = k;
  for (auto _ : state) {
    BatchedGemm(shape, ap, bp, cp);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  SetRateCounters(state, batch * 2 * m * n * k,
                  batch * (m * k + k * n + m * n) * static_cast<int64_t>(4));
}
BENCHMARK(BM_BatchedGemmTtStage)
    ->Args({512, 8})
    ->Args({512, 32})
    ->Args({512, 64})
    ->Args({4096, 32});

TtEmbeddingBag MakeBenchEmbedding(int64_t rows, int64_t rank,
                                  bool fuse_lookup = true) {
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(rows, 16, 3, rank);
  cfg.fuse_lookup = fuse_lookup;
  Rng rng(3);
  return TtEmbeddingBag(cfg, TtInit::kSampledGaussian, rng);
}

CsrBatch MakeLookupBatch(int64_t rows, int64_t batch) {
  Rng rng(4);
  std::vector<int64_t> idx(static_cast<size_t>(batch));
  for (int64_t& i : idx) i = rng.RandInt(rows);
  return CsrBatch::FromIndices(std::move(idx));
}

/// Algorithmic memory traffic of one lookup: the core slices its digits
/// select (read) plus the reconstructed row (write). Intermediates live in
/// L1 under the fused kernel, so they are excluded on purpose.
int64_t LookupBytes(const TtEmbeddingBag& emb) {
  int64_t bytes = emb.emb_dim() * static_cast<int64_t>(sizeof(float));
  for (int k = 0; k < emb.cores().num_cores(); ++k) {
    bytes += emb.cores().SliceSize(k) * static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

void BM_TtEmbeddingForward(benchmark::State& state) {
  const int64_t rows = 1000000;
  const int64_t rank = state.range(0);
  const int64_t batch = state.range(1);
  TtEmbeddingBag emb = MakeBenchEmbedding(rows, rank);
  CsrBatch lookup = MakeLookupBatch(rows, batch);
  std::vector<float> out(static_cast<size_t>(batch * 16));
  const int64_t flops_before = emb.stats().forward_flops;
  for (auto _ : state) {
    emb.Forward(lookup, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  const int64_t flops_per_iter =
      state.iterations() > 0
          ? (emb.stats().forward_flops - flops_before) / state.iterations()
          : 0;
  SetRateCounters(state, flops_per_iter, batch * LookupBytes(emb));
}
BENCHMARK(BM_TtEmbeddingForward)
    ->Args({8, 512})
    ->Args({32, 512})
    ->Args({64, 512})
    ->Args({32, 4096});

void BM_TtEmbeddingBackwardSgd(benchmark::State& state) {
  const int64_t rows = 1000000;
  const int64_t rank = state.range(0);
  const int64_t batch = 512;
  TtEmbeddingBag emb = MakeBenchEmbedding(rows, rank);
  CsrBatch lookup = MakeLookupBatch(rows, batch);
  std::vector<float> out(static_cast<size_t>(batch * 16));
  std::vector<float> grad(out.size(), 1.0f);
  emb.Forward(lookup, out.data());
  const int64_t flops_before = emb.stats().backward_flops;
  for (auto _ : state) {
    emb.Backward(lookup, grad.data());
    emb.ApplySgd(0.01f);
  }
  state.SetItemsProcessed(state.iterations() * batch);
  const int64_t flops_per_iter =
      state.iterations() > 0
          ? (emb.stats().backward_flops - flops_before) / state.iterations()
          : 0;
  SetRateCounters(state, flops_per_iter, 2 * batch * LookupBytes(emb));
}
BENCHMARK(BM_TtEmbeddingBackwardSgd)->Arg(8)->Arg(32)->Arg(64);

void BM_MaterializeRow(benchmark::State& state) {
  TtEmbeddingBag emb = MakeBenchEmbedding(1000000, state.range(0));
  std::vector<float> row(16);
  int64_t i = 0;
  for (auto _ : state) {
    emb.cores().MaterializeRow(i % 1000000, row.data());
    i += 7919;
    benchmark::DoNotOptimize(row.data());
  }
  state.counters["bytes/s"] =
      benchmark::Counter(static_cast<double>(LookupBytes(emb)) *
                             static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MaterializeRow)->Arg(8)->Arg(32)->Arg(64);

void BM_FreqTrackerIncrement(benchmark::State& state) {
  FreqTracker tracker;
  Rng rng(5);
  ZipfSampler zipf(1000000, 1.15);
  for (auto _ : state) {
    tracker.Increment(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreqTrackerIncrement);

void BM_LfuCacheFind(benchmark::State& state) {
  const int64_t cap = 1024;
  LfuRowCache cache(cap, 16);
  std::vector<int64_t> rows(static_cast<size_t>(cap));
  for (int64_t i = 0; i < cap; ++i) rows[static_cast<size_t>(i)] = i * 3;
  std::vector<float> vals(static_cast<size_t>(cap * 16), 1.0f);
  cache.Populate(rows, vals.data());
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Find(rng.RandInt(4096)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LfuCacheFind);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(state.range(0), 1.15);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(10000)->Arg(10000000);

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// One SIMD tier's measurements at a fixed thread count: the raw TT GEMM
// chain (LookupRows — decode + per-row GEMMs, no pooling), the fused
// decode→chain→pool forward, and the staged (unfused) forward.
struct TierRow {
  SimdTier tier = SimdTier::kScalar;
  double chain_ms = 0.0, chain_gflops = 0.0, chain_gbytes = 0.0;
  double fused_ms = 0.0, fused_gflops = 0.0, fused_lookups_per_s = 0.0;
  double unfused_ms = 0.0, unfused_gflops = 0.0;
  bool fused_matches_unfused = true;
};

// --json mode: the Criteo-shape sweeps described in the file comment.
int RunKernelJsonSweep(const std::string& path) {
  const int64_t rows = 1000000;
  const int64_t rank = 32;
  const int64_t batch = 4096;
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const int reps = 5;

  struct SweepRow {
    int threads = 0;
    double fwd_ms = 0.0, fwd_gflops = 0.0, fwd_lookups_per_s = 0.0;
    double fwdbwd_ms = 0.0, fwdbwd_gflops = 0.0, fwdbwd_lookups_per_s = 0.0;
  };
  std::vector<SweepRow> rowsout;
  std::vector<float> ref_out;
  bool deterministic = true;
  int64_t block_size = 0;

  // The thread sweep runs on whatever tier dispatch resolved (including a
  // TTREC_SIMD override) — that tier is stamped into the envelope.
  const SimdTier sweep_tier = ActiveSimdTier();

  for (int threads : thread_counts) {
    ThreadPool::SetGlobalThreads(threads);
    TtEmbeddingBag emb = MakeBenchEmbedding(rows, rank);
    block_size = emb.config().block_size;
    CsrBatch lookup = MakeLookupBatch(rows, batch);
    std::vector<float> out(static_cast<size_t>(batch * 16));
    std::vector<float> grad(out.size(), 1.0f);

    emb.Forward(lookup, out.data());  // warm-up + determinism probe
    if (ref_out.empty()) {
      ref_out = out;
    } else if (std::memcmp(ref_out.data(), out.data(),
                           out.size() * sizeof(float)) != 0) {
      deterministic = false;
    }

    SweepRow row;
    row.threads = threads;
    const TtEmbeddingStats before_fwd = emb.stats();
    auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) emb.Forward(lookup, out.data());
    row.fwd_ms = MsSince(t0) / reps;
    const int64_t fwd_flops =
        (emb.stats().forward_flops - before_fwd.forward_flops) / reps;
    row.fwd_gflops = static_cast<double>(fwd_flops) / (row.fwd_ms * 1e6);
    row.fwd_lookups_per_s = static_cast<double>(batch) / (row.fwd_ms * 1e-3);

    const TtEmbeddingStats before_bwd = emb.stats();
    t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      emb.Forward(lookup, out.data());
      emb.Backward(lookup, grad.data());
      emb.ApplySgd(0.01f);
    }
    row.fwdbwd_ms = MsSince(t0) / reps;
    const int64_t step_flops =
        (emb.stats().forward_flops - before_bwd.forward_flops +
         emb.stats().backward_flops - before_bwd.backward_flops) /
        reps;
    row.fwdbwd_gflops = static_cast<double>(step_flops) / (row.fwdbwd_ms * 1e6);
    row.fwdbwd_lookups_per_s =
        static_cast<double>(batch) / (row.fwdbwd_ms * 1e-3);
    rowsout.push_back(row);

    std::printf(
        "threads=%d  fwd %.2f ms (%.2f GFLOP/s)  fwd+bwd+sgd %.2f ms "
        "(%.2f GFLOP/s)\n",
        threads, row.fwd_ms, row.fwd_gflops, row.fwdbwd_ms,
        row.fwdbwd_gflops);
  }

  // --- SIMD-tier sweep: single thread so kernel speedups are not masked by
  // parallel scaling, and an L2-resident table (64K rows, ~350 KB of cores)
  // so they are not masked by slice-fetch memory traffic either — the 1M-row
  // thread sweep above already covers the memory-bound regime. min-of-reps
  // timing rejects scheduler/turbo noise. The same cores (identical seed)
  // serve every tier and both the fused and staged paths, so outputs are
  // memcmp-comparable.
  ThreadPool::SetGlobalThreads(1);
  const int64_t tier_rows = 65536;
  const int tier_reps = 20;
  std::vector<TierRow> tiers;
  bool fused_ok = true;
  {
    TtEmbeddingBag emb_fused = MakeBenchEmbedding(tier_rows, rank, true);
    TtEmbeddingBag emb_staged = MakeBenchEmbedding(tier_rows, rank, false);
    CsrBatch lookup = MakeLookupBatch(tier_rows, batch);
    const std::vector<int64_t> indices(lookup.indices.begin(),
                                       lookup.indices.end());
    const int64_t chain_bytes = batch * LookupBytes(emb_fused);
    std::vector<float> chain_out(static_cast<size_t>(batch * 16));
    std::vector<float> out_f(static_cast<size_t>(batch * 16));
    std::vector<float> out_s(static_cast<size_t>(batch * 16));

    const auto min_ms = [&](auto&& fn) {
      fn();  // warm-up: page in buffers, settle the dispatch tier
      double best = std::numeric_limits<double>::infinity();
      for (int i = 0; i < tier_reps; ++i) {
        const auto t0 = Clock::now();
        fn();
        best = std::min(best, MsSince(t0));
      }
      return best;
    };

    const int detected = static_cast<int>(DetectedSimdTier());
    for (int t = 0; t <= detected; ++t) {
      const SimdTier tier = static_cast<SimdTier>(t);
      SetSimdTier(tier);
      TierRow row;
      row.tier = tier;

      const int64_t flops0 = emb_fused.stats().forward_flops;
      emb_fused.LookupRows(indices, chain_out.data());
      const int64_t chain_flops = emb_fused.stats().forward_flops - flops0;
      row.chain_ms =
          min_ms([&] { emb_fused.LookupRows(indices, chain_out.data()); });
      row.chain_gflops =
          static_cast<double>(chain_flops) / (row.chain_ms * 1e6);
      row.chain_gbytes =
          static_cast<double>(chain_bytes) / (row.chain_ms * 1e6);

      row.fused_ms =
          min_ms([&] { emb_fused.Forward(lookup, out_f.data()); });
      // Forward runs the same per-lookup chain, so its FLOP count per call
      // equals the LookupRows count (pooling adds are not counted).
      row.fused_gflops =
          static_cast<double>(chain_flops) / (row.fused_ms * 1e6);
      row.fused_lookups_per_s =
          static_cast<double>(batch) / (row.fused_ms * 1e-3);

      row.unfused_ms =
          min_ms([&] { emb_staged.Forward(lookup, out_s.data()); });
      row.unfused_gflops =
          static_cast<double>(chain_flops) / (row.unfused_ms * 1e6);

      row.fused_matches_unfused =
          std::memcmp(out_f.data(), out_s.data(),
                      out_f.size() * sizeof(float)) == 0;
      fused_ok = fused_ok && row.fused_matches_unfused;
      tiers.push_back(row);

      std::printf(
          "tier=%-6s  chain %.2f ms (%.2f GFLOP/s, %.2f GB/s)  fused fwd "
          "%.2f ms  staged fwd %.2f ms  fused==staged: %s\n",
          SimdTierName(tier), row.chain_ms, row.chain_gflops,
          row.chain_gbytes, row.fused_ms, row.unfused_ms,
          row.fused_matches_unfused ? "yes" : "NO");
    }
    SetSimdTier(sweep_tier);  // restore whatever the process started with
  }

  // Shared BENCH_*.json envelope (obs/json_writer.h); field names below are
  // the stable contract CI consumers parse. schema v2 adds cpu_model, the
  // simd_tier_* stamps, and the tier_sweep block.
  obs::JsonWriter w;
  obs::BeginBenchEnvelope(w, "kernel_microbench");
  w.Kv("cpu_model", CpuModelName());
  w.Kv("simd_tier_detected", SimdTierName(DetectedSimdTier()));
  w.Kv("simd_tier_active", SimdTierName(sweep_tier));
  w.Key("table").BeginObject();
  w.Kv("rows", rows).Kv("emb_dim", 16).Kv("num_cores", 3);
  w.Kv("rank", rank).Kv("batch", batch).Kv("block_size", block_size);
  w.EndObject();
  w.Kv("hardware_concurrency", std::thread::hardware_concurrency());
  w.Kv("deterministic_across_threads", deterministic);
  w.Key("results").BeginArray();
  for (const SweepRow& r : rowsout) {
    w.BeginObject();
    w.Kv("threads", r.threads);
    w.Kv("forward_ms", r.fwd_ms, 4);
    w.Kv("forward_gflops", r.fwd_gflops, 4);
    w.Kv("forward_lookups_per_s", r.fwd_lookups_per_s, 1);
    w.Kv("fwdbwd_ms", r.fwdbwd_ms, 4);
    w.Kv("fwdbwd_gflops", r.fwdbwd_gflops, 4);
    w.Kv("fwdbwd_lookups_per_s", r.fwdbwd_lookups_per_s, 1);
    w.Kv("fwd_speedup_vs_1t", rowsout[0].fwd_ms / r.fwd_ms, 3);
    w.Kv("fwdbwd_speedup_vs_1t", rowsout[0].fwdbwd_ms / r.fwdbwd_ms, 3);
    w.EndObject();
  }
  w.EndArray();
  w.Key("tier_sweep").BeginObject();
  w.Kv("threads", 1);
  w.Kv("rows", tier_rows);  // L2-resident table; see comment at the sweep
  w.Kv("batch", batch);
  w.Kv("timing", "min_of_reps");
  w.Kv("reps", tier_reps);
  w.Key("results").BeginArray();
  for (const TierRow& r : tiers) {
    w.BeginObject();
    w.Kv("tier", SimdTierName(r.tier));
    w.Kv("gemm_chain_ms", r.chain_ms, 4);
    w.Kv("gemm_chain_gflops", r.chain_gflops, 4);
    w.Kv("gemm_chain_gbytes_per_s", r.chain_gbytes, 4);
    w.Kv("fused_forward_ms", r.fused_ms, 4);
    w.Kv("fused_forward_gflops", r.fused_gflops, 4);
    w.Kv("fused_lookups_per_s", r.fused_lookups_per_s, 1);
    w.Kv("unfused_forward_ms", r.unfused_ms, 4);
    w.Kv("unfused_forward_gflops", r.unfused_gflops, 4);
    w.Kv("fused_matches_unfused", r.fused_matches_unfused);
    w.Kv("gemm_chain_speedup_vs_scalar", tiers[0].chain_ms / r.chain_ms, 3);
    w.Kv("fused_speedup_vs_scalar", tiers[0].fused_ms / r.fused_ms, 3);
    w.Kv("unfused_speedup_vs_scalar", tiers[0].unfused_ms / r.unfused_ms, 3);
    w.Kv("fused_speedup_vs_unfused", r.unfused_ms / r.fused_ms, 3);
    w.EndObject();
  }
  w.EndArray().EndObject();
  w.EndObject();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(w.str().data(), 1, w.str().size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf(
      "wrote %s (deterministic across threads: %s, fused==staged: %s)\n",
      path.c_str(), deterministic ? "yes" : "NO", fused_ok ? "yes" : "NO");
  if (!deterministic) return 2;
  if (!fused_ok) return 3;
  return 0;
}

}  // namespace
}  // namespace ttrec

// Custom main: peel off `--json <path>` (google-benchmark rejects unknown
// flags) before handing the rest to the standard benchmark driver.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    return ttrec::RunKernelJsonSweep(json_path);
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
