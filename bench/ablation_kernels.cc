// Ablations of TT-Rec's kernel-level design choices (DESIGN.md §3):
//  1. Batched GEMM vs per-lookup execution (block_size sweep) — the
//     paper's core kernel optimization (§4.1, batched cuBLAS).
//  2. Recompute vs stash of forward intermediates in backward (§4.2's
//     "can be eliminated by storing tensors from the forward pass").
//  3. Per-core parameter memory vs extra workspace across block sizes.
#include <cstdio>
#include <vector>

#include "harness.h"
#include "tt/tt_embedding.h"

using namespace ttrec;
using namespace ttrec::bench;

namespace {

CsrBatch ZipfBatch(int64_t rows, int64_t batch, uint64_t seed) {
  Rng rng(seed);
  ZipfSampler zipf(rows, 1.15);
  IndexShuffle shuffle(rows, seed + 1);
  std::vector<int64_t> idx(static_cast<size_t>(batch));
  for (int64_t& i : idx) i = shuffle.Map(zipf.Sample(rng));
  return CsrBatch::FromIndices(std::move(idx));
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("ablation_kernels",
              "Ablations: GEMM batching, intermediate stash vs recompute "
              "(design choices of paper §4.1/§4.2)",
              env);

  const int64_t rows = env.full ? 1000000 : 200000;
  const int64_t dim = 16;
  const int64_t rank = 32;
  const int64_t batch = 2048;
  const int reps = 5;

  CsrBatch lookups = ZipfBatch(rows, batch, 11);
  std::vector<float> out(static_cast<size_t>(batch * dim));
  std::vector<float> grad(out.size(), 1.0f);

  // 1. Execution strategy: the naive per-row path (MaterializeRow with
  // per-call temporaries — what a straightforward implementation or
  // T3nsor-style gather does) vs the batched kernel across block sizes.
  // Note the CPU nuance: block size barely matters here because a CPU has
  // no kernel-launch cost to amortize; on the paper's GPU the batched
  // launch (1 vs B cublas calls per stage) is the entire ballgame. What
  // the CPU *does* show is the win over naive per-row execution and the
  // workspace/block-size trade.
  std::printf("1) execution strategy (forward, %lld lookups, rank %lld):\n",
              static_cast<long long>(batch), static_cast<long long>(rank));
  std::printf("%-18s %14s %16s %14s\n", "strategy", "fwd ms",
              "vs naive/row", "workspace");
  double naive_ms = 0.0;
  {
    TtEmbeddingConfig cfg;
    cfg.shape = MakeTtShape(rows, dim, 3, rank);
    Rng rng(3);
    TtEmbeddingBag emb(cfg, TtInit::kSampledGaussian, rng);
    std::vector<float> row(static_cast<size_t>(dim));
    WallTimer t;
    for (int r = 0; r < reps; ++r) {
      for (int64_t idx : lookups.indices) {
        emb.cores().MaterializeRow(idx, row.data());
      }
    }
    naive_ms = t.Seconds() * 1000.0 / reps;
    std::printf("%-18s %14.3f %15.2fx %14s\n", "naive per-row", naive_ms,
                1.0, "per-call alloc");
  }
  for (int64_t bs : {1, 256, 4096}) {
    TtEmbeddingConfig cfg;
    cfg.shape = MakeTtShape(rows, dim, 3, rank);
    cfg.block_size = bs;
    Rng rng(3);
    TtEmbeddingBag emb(cfg, TtInit::kSampledGaussian, rng);
    emb.Forward(lookups, out.data());
    WallTimer t;
    for (int r = 0; r < reps; ++r) emb.Forward(lookups, out.data());
    const double ms = t.Seconds() * 1000.0 / reps;
    char name[32];
    std::snprintf(name, sizeof(name), "batched bs=%lld",
                  static_cast<long long>(bs));
    std::printf("%-18s %14.3f %15.2fx %14s\n", name, ms, naive_ms / ms,
                FormatBytes(emb.WorkspaceBytes()).c_str());
  }

  // 2. Stash vs recompute in backward.
  std::printf("\n2) backward intermediates (%lld lookups, rank %lld):\n",
              static_cast<long long>(batch), static_cast<long long>(rank));
  std::printf("%-12s %14s %14s\n", "mode", "fwd+bwd ms", "note");
  for (bool stash : {false, true}) {
    TtEmbeddingConfig cfg;
    cfg.shape = MakeTtShape(rows, dim, 3, rank);
    cfg.stash_intermediates = stash;
    Rng rng(3);
    TtEmbeddingBag emb(cfg, TtInit::kSampledGaussian, rng);
    emb.Forward(lookups, out.data());
    emb.Backward(lookups, grad.data());
    emb.ZeroGrad();
    WallTimer t;
    for (int r = 0; r < reps; ++r) {
      emb.Forward(lookups, out.data());
      emb.Backward(lookups, grad.data());
      emb.ApplySgd(0.01f);
    }
    const double ms = t.Seconds() * 1000.0 / reps;
    std::printf("%-12s %14.3f %14s\n", stash ? "stash" : "recompute", ms,
                stash ? "(more memory)" : "(paper default)");
  }

  // 3. Rank sweep: flops per lookup and achieved throughput.
  std::printf("\n3) rank sweep (forward, %lld lookups):\n",
              static_cast<long long>(batch));
  std::printf("%-8s %14s %16s %14s %14s\n", "rank", "fwd ms",
              "kflop/lookup", "params", "reduction");
  for (int64_t r : {2, 8, 16, 32, 64}) {
    TtEmbeddingConfig cfg;
    cfg.shape = MakeTtShape(rows, dim, 3, r);
    Rng rng(3);
    TtEmbeddingBag emb(cfg, TtInit::kSampledGaussian, rng);
    emb.Forward(lookups, out.data());
    WallTimer t;
    for (int rep = 0; rep < reps; ++rep) emb.Forward(lookups, out.data());
    const double ms = t.Seconds() * 1000.0 / reps;
    const double kflop =
        static_cast<double>(emb.stats().forward_flops) /
        static_cast<double>(emb.stats().lookups) / 1000.0;
    std::printf("%-8lld %14.3f %16.2f %14lld %13.0fx\n",
                static_cast<long long>(r), ms, kflop,
                static_cast<long long>(emb.shape().TotalParams()),
                emb.shape().CompressionRatio());
  }
  // 4. Index deduplication: Zipf traffic repeats hot rows within a block;
  // dedup runs the TT chain once per distinct row.
  std::printf("\n4) block dedup on Zipf traffic (%lld lookups, rank %lld):\n",
              static_cast<long long>(batch), static_cast<long long>(rank));
  std::printf("%-18s %14s %14s\n", "zipf exponent", "plain f+b ms",
              "dedup f+b ms");
  for (double zipf_s : {0.0, 1.05, 1.4}) {
    Rng trng(21);
    ZipfSampler zipf(rows, zipf_s);
    IndexShuffle shuffle(rows, 22);
    std::vector<int64_t> idx(static_cast<size_t>(batch));
    for (int64_t& i : idx) i = shuffle.Map(zipf.Sample(trng));
    CsrBatch zb = CsrBatch::FromIndices(std::move(idx));
    double times[2];
    for (bool dedup : {false, true}) {
      TtEmbeddingConfig cfg;
      cfg.shape = MakeTtShape(rows, dim, 3, rank);
      cfg.deduplicate = dedup;
      Rng rng(3);
      TtEmbeddingBag emb(cfg, TtInit::kSampledGaussian, rng);
      emb.Forward(zb, out.data());
      WallTimer t;
      for (int r = 0; r < reps; ++r) {
        emb.Forward(zb, out.data());
        emb.Backward(zb, grad.data());
        emb.ApplySgd(0.01f);
      }
      times[dedup ? 1 : 0] = t.Seconds() * 1000.0 / reps;
    }
    std::printf("%-18.2f %14.3f %14.3f  (%.2fx)\n", zipf_s, times[0],
                times[1], times[0] / times[1]);
  }

  // 5. Number of TT cores d: the paper fixes d = 3 (Table 2); this sweep
  // shows why — d = 2 compresses little, d >= 4 adds compute and more
  // rank-bottlenecked stages for marginal size gains at dim 16.
  std::printf("\n5) TT core count d (rank %lld, %lld lookups):\n",
              static_cast<long long>(rank), static_cast<long long>(batch));
  std::printf("%-6s %14s %14s %14s %16s\n", "d", "fwd ms", "params",
              "reduction", "kflop/lookup");
  for (int d : {2, 3, 4}) {
    TtEmbeddingConfig cfg;
    cfg.shape = MakeTtShape(rows, dim, d, rank);
    Rng rng(3);
    TtEmbeddingBag emb(cfg, TtInit::kSampledGaussian, rng);
    emb.Forward(lookups, out.data());
    WallTimer t;
    for (int r = 0; r < reps; ++r) emb.Forward(lookups, out.data());
    const double ms = t.Seconds() * 1000.0 / reps;
    const double kflop = static_cast<double>(emb.stats().forward_flops) /
                         static_cast<double>(emb.stats().lookups) / 1000.0;
    std::printf("%-6d %14.3f %14lld %13.0fx %16.2f\n", d, ms,
                static_cast<long long>(emb.shape().TotalParams()),
                emb.shape().CompressionRatio(), kflop);
  }

  std::printf(
      "\nExpected: on CPU all execution strategies tie (~FLOP-bound; no "
      "kernel-launch cost) — an honest negative: the paper's batched-GEMM "
      "win is a GPU launch-amortization effect; the CPU levers are dedup "
      "(section 4) and rank. Stash is modestly faster than recompute "
      "at higher memory; forward cost scales ~quadratically in rank while "
      "params scale ~R^2; dedup wins grow with traffic skew. The d sweep "
      "trades compute for compression: d = 2 is cheap but its factor "
      "sizes scale as sqrt(rows) (poor at the paper's 10M-row tables), "
      "d = 4 doubles compute for little size gain at dim 16 — d = 3 (the "
      "paper's choice) is the sweet spot at production scale.\n");
  return 0;
}
