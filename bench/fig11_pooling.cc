// Figure 11: TT-Rec kernel (no cache) vs PyTorch EmbeddingBag for
// embedding-dominated DLRMs — time per training sample as the pooling
// factor P (lookups per sample) grows from 1 (Criteo) to 10 and 100,
// across TT ranks.
#include <cstdio>
#include <vector>

#include "dlrm/embedding_bag.h"
#include "harness.h"
#include "tt/tt_embedding.h"

using namespace ttrec;
using namespace ttrec::bench;

namespace {

CsrBatch PooledBatch(Rng& rng, ZipfSampler& zipf, IndexShuffle& shuffle,
                     int64_t bags, int64_t pooling) {
  CsrBatch b;
  b.offsets.push_back(0);
  for (int64_t i = 0; i < bags; ++i) {
    for (int64_t p = 0; p < pooling; ++p) {
      b.indices.push_back(shuffle.Map(zipf.Sample(rng)));
    }
    b.offsets.push_back(static_cast<int64_t>(b.indices.size()));
  }
  return b;
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("fig11_pooling",
              "Paper Figure 11 (time per sample vs pooling factor P, TT-Rec "
              "vs EmbeddingBag)",
              env);

  const int64_t rows = env.full ? 1000000 : 100000;
  const int64_t dim = 16;
  const int64_t bags = 256;  // samples per measured batch
  const int reps = 5;

  std::printf("table: %lld x %lld, batch = %lld samples (fwd+bwd timed)\n\n",
              static_cast<long long>(rows), static_cast<long long>(dim),
              static_cast<long long>(bags));
  std::printf("%-6s %-14s %16s %16s %10s\n", "P", "kernel",
              "us/sample fwd", "us/sample f+b", "vs dense");

  for (int64_t P : {1, 10, 100}) {
    Rng rng(P);
    ZipfSampler zipf(rows, 1.15);
    IndexShuffle shuffle(rows, 9);
    CsrBatch batch = PooledBatch(rng, zipf, shuffle, bags, P);
    std::vector<float> out(static_cast<size_t>(bags * dim));
    std::vector<float> grad(out.size(), 1.0f);

    double dense_total = 0.0;
    // Dense baseline.
    {
      DenseEmbeddingBag dense(rows, dim, PoolingMode::kSum,
                              DenseEmbeddingInit::UniformScaled(), rng);
      dense.Forward(batch, out.data());
      WallTimer fwd;
      for (int r = 0; r < reps; ++r) dense.Forward(batch, out.data());
      const double fwd_us = fwd.Seconds() * 1e6 / (reps * bags);
      WallTimer both;
      for (int r = 0; r < reps; ++r) {
        dense.Forward(batch, out.data());
        dense.Backward(batch, grad.data());
        dense.ApplySgd(0.01f);
      }
      dense_total = both.Seconds() * 1e6 / (reps * bags);
      std::printf("%-6lld %-14s %16.2f %16.2f %10s\n",
                  static_cast<long long>(P), "EmbeddingBag", fwd_us,
                  dense_total, "1.00x");
    }
    for (const auto& [rank, dedup] :
         std::vector<std::pair<int64_t, bool>>{{8, false},
                                               {32, false},
                                               {32, true}}) {
      TtEmbeddingConfig cfg;
      cfg.shape = MakeTtShape(rows, dim, 3, rank);
      cfg.deduplicate = dedup;
      TtEmbeddingBag tt(cfg, TtInit::kSampledGaussian, rng);
      tt.Forward(batch, out.data());
      WallTimer fwd;
      for (int r = 0; r < reps; ++r) tt.Forward(batch, out.data());
      const double fwd_us = fwd.Seconds() * 1e6 / (reps * bags);
      WallTimer both;
      for (int r = 0; r < reps; ++r) {
        tt.Forward(batch, out.data());
        tt.Backward(batch, grad.data());
        tt.ApplySgd(0.01f);
      }
      const double total_us = both.Seconds() * 1e6 / (reps * bags);
      char name[32];
      std::snprintf(name, sizeof(name), "TT-Rec r=%lld%s",
                    static_cast<long long>(rank), dedup ? "+dd" : "");
      std::printf("%-6lld %-14s %16.2f %16.2f %9.2fx\n",
                  static_cast<long long>(P), name, fwd_us, total_us,
                  total_us / dense_total);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig 11): per-sample cost grows with P for "
      "both kernels; EmbeddingBag amortizes better (benefits from row "
      "reuse), so the TT-Rec/EmbeddingBag gap WIDENS as P grows — the "
      "motivation for the cache (Figs 10/12).\n");
  return 0;
}
