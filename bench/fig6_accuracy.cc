// Figure 6: (a/b) validation accuracy of TT-Rec vs the number of compressed
// tables (3/5/7) and TT rank (8/16/32/64), against the uncompressed
// baseline; (c) accuracy vs TT-core initialization strategy.
#include <cstdio>
#include <vector>

#include <string>

#include "harness.h"

using namespace ttrec;
using namespace ttrec::bench;

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("fig6_accuracy",
              "Paper Figure 6a/6b (accuracy vs #tables x rank) and 6c "
              "(accuracy vs init strategy)",
              env);

  TrainConfig tc;
  tc.iterations = env.train_iters;
  tc.batch_size = env.batch_size;
  tc.lr = 0.1f;
  tc.eval_batches = 4;
  tc.eval_batch_size = 512;
  tc.log_every = 0;

  const std::vector<int64_t> ranks = env.full
                                         ? std::vector<int64_t>{8, 16, 32, 64}
                                         : std::vector<int64_t>{8, 32, 64};

  // (a) Kaggle and (b) Terabyte: tables x rank sweep vs baseline.
  SweepModelConfig base;
  for (const char* panel : {"6a", "6b"}) {
    const bool kaggle = std::string(panel) == "6a";
    // Terabyte tables are ~6x larger; scale further so both panels run in
    // similar time at default scale.
    const DatasetSpec spec =
        kaggle ? KaggleSpec().Scaled(env.scale_div)
               : TerabyteSpec().Scaled(env.scale_div * 4);
    base = SweepModelConfig{};
    base.spec = spec;
    base.num_tt_tables = 0;
    base.dlrm = BenchDlrmConfig(env);
    const SweepRunResult rb = RunSweep(base, tc, 77);
    std::printf("Fig %s (synthetic %s): baseline accuracy %.3f%%, loss "
                "%.4f, auc %.4f, emb %s\n",
                panel, spec.name.c_str(), 100.0 * rb.eval.accuracy,
                rb.eval.loss, rb.eval.auc,
                FormatBytes(rb.embedding_bytes).c_str());
    std::printf("%-10s", "TT-Emb.");
    for (int64_t r : ranks) std::printf(" %18s=%-3lld", "rank",
                                        static_cast<long long>(r));
    std::printf("\n");
    for (int k : {3, 5, 7}) {
      std::printf("%-10d", k);
      for (int64_t rank : ranks) {
        SweepModelConfig cfg = base;
        cfg.num_tt_tables = k;
        cfg.tt_rank = rank;
        const SweepRunResult r = RunSweep(cfg, tc, 77);
        std::printf("    %7.3f [%+6.3f]", 100.0 * r.eval.accuracy,
                    100.0 * (r.eval.accuracy - rb.eval.accuracy));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  base.spec = KaggleSpec().Scaled(env.scale_div);

  // (c) init strategies at the paper's headline setting (5 tables, R=32).
  std::printf("\nFig 6c: accuracy vs TT-core init (TT-Emb. of 5, rank 32)\n");
  std::printf("%-20s %10s %10s %8s\n", "init", "accuracy%", "bce_loss",
              "auc");
  for (TtInit init : {TtInit::kUniform, TtInit::kGaussian,
                      TtInit::kSampledGaussian}) {
    SweepModelConfig cfg = base;
    cfg.num_tt_tables = 5;
    cfg.tt_rank = 32;
    cfg.tt_init = init;
    const SweepRunResult r = RunSweep(cfg, tc, 77);
    std::printf("%-20s %10.3f %10.4f %8.4f\n", TtInitName(init),
                100.0 * r.eval.accuracy, r.eval.loss, r.eval.auc);
  }
  std::printf(
      "\nExpected shape (paper Fig 6): accuracy within a few tenths of the "
      "baseline; mild degradation as more tables are compressed; gains "
      "saturate with rank; sampled-Gaussian init is best in 6c.\n");
  return 0;
}
