// Global cache autotuning under skew shift: does MRC-driven budget
// re-apportionment (src/cache/cache_manager.h) beat static splits?
//
// Four TT-compressed tables of different sizes and Zipf exponents share one
// lookup stream whose traffic concentration rotates across tables every
// phase, and whose hot sets reshuffle at each boundary (data/skew_shift.h).
// Three capacity policies run the identical stream with the identical
// per-table cache budget total and identical content-refresh cadence —
// only the SPLIT of the byte budget across tables differs:
//
//   equal      every table gets budget/num_tables bytes;
//   fig10b     bytes proportional to table rows — the paper's "cache
//              0.01% of each table" heuristic normalized to the budget;
//   autotuned  starts equal, then a CacheManager re-apportions the budget
//              from live miss-ratio curves every retune interval.
//
// The run FAILS (exit 1) unless the autotuned policy's aggregate miss rate
// is strictly below both static baselines — this is the acceptance gate
// for the autotuner, recorded in BENCH_cache.json (--json <path>).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_manager.h"
#include "cache/cached_tt_embedding.h"
#include "cache/lfu_cache.h"
#include "data/skew_shift.h"
#include "harness.h"
#include "obs/json_writer.h"
#include "tt/tt_shapes.h"

using namespace ttrec;
using namespace ttrec::bench;

namespace {

struct Workload {
  std::vector<int64_t> rows = {16384, 6144, 3072, 2048};
  std::vector<double> zipf = {1.05, 1.25, 1.35, 1.15};
  std::vector<double> shares = {8.0, 1.0, 1.0, 1.0};
  int64_t emb_dim = 16;
  int64_t lookups_per_iteration = 512;
  int64_t phase_length = 80;
  int64_t iterations = 240;  // 3 phases
  int64_t budget_bytes = 0;  // filled in main
  int64_t retune_interval = 20;
};

SkewShiftConfig ScenarioConfig(const Workload& w) {
  SkewShiftConfig sc;
  for (size_t t = 0; t < w.rows.size(); ++t) {
    SkewShiftTableConfig tc;
    tc.rows = w.rows[t];
    tc.zipf_exponent = w.zipf[t];
    tc.traffic_share = w.shares[t];
    sc.tables.push_back(tc);
  }
  sc.lookups_per_iteration = w.lookups_per_iteration;
  sc.phase_length = w.phase_length;
  sc.seed = 0xCAFE;
  return sc;
}

std::vector<std::unique_ptr<CachedTtEmbeddingBag>> BuildTables(
    const Workload& w, const std::vector<int64_t>& capacities) {
  std::vector<std::unique_ptr<CachedTtEmbeddingBag>> tables;
  Rng rng(0xA11C);  // same TT init for every policy
  for (size_t t = 0; t < w.rows.size(); ++t) {
    CachedTtConfig cfg;
    cfg.tt.shape = MakeTtShape(w.rows[t], w.emb_dim, 3, 8);
    cfg.cache_capacity = capacities[t];
    // Identical content-refresh machinery across policies: warm up fast,
    // keep tracking, periodically decay + re-warm so the resident set
    // follows the phase. Only the capacity split differs.
    cfg.warmup_iterations = 20;
    cfg.refresh_interval = 10;
    cfg.track_after_warmup = true;
    cfg.rewarm_period = 30;
    tables.push_back(
        std::make_unique<CachedTtEmbeddingBag>(cfg, TtInit::kGaussian, rng));
  }
  return tables;
}

struct PolicyResult {
  std::string name;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t retunes = 0;
  std::vector<int64_t> final_rows;
  double miss_rate() const {
    const int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(misses) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

PolicyResult RunPolicy(const Workload& w, const std::string& name,
                       const std::vector<int64_t>& capacities,
                       bool autotune) {
  std::vector<std::unique_ptr<CachedTtEmbeddingBag>> tables =
      BuildTables(w, capacities);
  std::unique_ptr<CacheManager> mgr;
  if (autotune) {
    CacheManagerConfig mc;
    mc.budget_bytes = w.budget_bytes;
    mgr = std::make_unique<CacheManager>(mc);
    for (size_t t = 0; t < tables.size(); ++t) {
      mgr->RegisterTable(static_cast<int>(t), tables[t].get());
    }
  }

  SkewShiftScenario scenario(ScenarioConfig(w));
  std::vector<float> output;
  for (int64_t it = 0; it < w.iterations; ++it) {
    const std::vector<CsrBatch> batches = scenario.NextBatch();
    for (size_t t = 0; t < tables.size(); ++t) {
      output.resize(static_cast<size_t>(batches[t].num_bags() * w.emb_dim));
      tables[t]->Forward(batches[t], output.data());
    }
    if (mgr != nullptr && (it + 1) % w.retune_interval == 0) {
      mgr->Retune();
    }
  }

  PolicyResult r;
  r.name = name;
  for (const auto& table : tables) {
    r.hits += table->cache().hits();
    r.misses += table->cache().misses();
    r.final_rows.push_back(table->cache().capacity());
  }
  if (mgr != nullptr) r.retunes = mgr->retunes();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("cache_autotune",
              "Global cache-budget autotuning from miss-ratio curves vs "
              "static splits under skew-shifted traffic",
              env);

  Workload w;
  if (env.full) {
    w.iterations *= 3;
    w.lookups_per_iteration *= 2;
  }
  const int64_t bytes_per_row = LfuRowCache::BytesPerRow(w.emb_dim);
  const int64_t budget_rows = 1200;
  w.budget_bytes = budget_rows * bytes_per_row;
  const size_t n = w.rows.size();

  // Static splits.
  std::vector<int64_t> equal_rows(n, budget_rows / static_cast<int64_t>(n));
  int64_t total_table_rows = 0;
  for (const int64_t r : w.rows) total_table_rows += r;
  std::vector<int64_t> fig10b_rows(n, 1);
  for (size_t t = 0; t < n; ++t) {
    fig10b_rows[t] = std::max<int64_t>(
        1, budget_rows * w.rows[t] / total_table_rows);
  }

  std::printf("budget: %lld rows (%s) across %zu tables, %lld iterations, "
              "phase length %lld\n\n",
              static_cast<long long>(budget_rows),
              FormatBytes(w.budget_bytes).c_str(), n,
              static_cast<long long>(w.iterations),
              static_cast<long long>(w.phase_length));

  std::vector<PolicyResult> results;
  results.push_back(RunPolicy(w, "equal", equal_rows, false));
  results.push_back(RunPolicy(w, "fig10b_static", fig10b_rows, false));
  results.push_back(RunPolicy(w, "autotuned", equal_rows, true));

  std::printf("%-16s %12s %12s %12s %8s   final rows/table\n", "policy",
              "hits", "misses", "miss_rate", "retunes");
  for (const PolicyResult& r : results) {
    std::string rows_str;
    for (const int64_t c : r.final_rows) {
      rows_str += std::to_string(c) + " ";
    }
    std::printf("%-16s %12lld %12lld %12.4f %8lld   %s\n", r.name.c_str(),
                static_cast<long long>(r.hits),
                static_cast<long long>(r.misses), r.miss_rate(),
                static_cast<long long>(r.retunes), rows_str.c_str());
  }

  const PolicyResult& equal = results[0];
  const PolicyResult& fig10b = results[1];
  const PolicyResult& autotuned = results[2];
  const bool wins = autotuned.miss_rate() < equal.miss_rate() &&
                    autotuned.miss_rate() < fig10b.miss_rate();
  std::printf("\nautotuned %s both static baselines (%.4f vs equal %.4f / "
              "fig10b %.4f)\n",
              wins ? "beats" : "DOES NOT BEAT", autotuned.miss_rate(),
              equal.miss_rate(), fig10b.miss_rate());

  if (!json_path.empty()) {
    obs::JsonWriter jw;
    obs::BeginBenchEnvelope(jw, "cache_autotune");
    jw.Key("config").BeginObject();
    jw.Kv("num_tables", static_cast<int64_t>(n));
    jw.Kv("budget_rows", budget_rows);
    jw.Kv("budget_bytes", w.budget_bytes);
    jw.Kv("iterations", w.iterations);
    jw.Kv("phase_length", w.phase_length);
    jw.Kv("lookups_per_iteration", w.lookups_per_iteration);
    jw.Kv("retune_interval", w.retune_interval);
    jw.Kv("emb_dim", w.emb_dim);
    jw.EndObject();
    jw.Key("policies").BeginArray();
    for (const PolicyResult& r : results) {
      jw.BeginObject();
      jw.Kv("name", r.name);
      jw.Kv("hits", r.hits);
      jw.Kv("misses", r.misses);
      jw.Kv("miss_rate", r.miss_rate(), 5);
      jw.Kv("retunes", r.retunes);
      jw.Key("final_rows").BeginArray();
      for (const int64_t c : r.final_rows) jw.Value(c);
      jw.EndArray();
      jw.EndObject();
    }
    jw.EndArray();
    jw.Kv("autotune_wins", wins);
    jw.EndObject();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fwrite(jw.str().data(), 1, jw.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  return wins ? 0 : 1;
}
