#include "harness.h"

#include <cstdio>
#include <cstdlib>

#include "cache/cached_tt_embedding.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "tensor/check.h"

namespace ttrec::bench {

BenchEnv BenchEnv::FromEnvironment() {
  BenchEnv env;
  const char* full = std::getenv("TTREC_FULL");
  env.full = (full != nullptr && full[0] == '1');
  if (env.full) {
    env.scale_div = 16;
    env.train_iters = 1000;
    env.batch_size = 128;
  }
  if (const char* div = std::getenv("TTREC_SCALE_DIV")) {
    env.scale_div = std::max<int64_t>(1, std::atoll(div));
  }
  if (const char* iters = std::getenv("TTREC_TRAIN_ITERS")) {
    env.train_iters = std::max<int64_t>(1, std::atoll(iters));
  }
  return env;
}

void PrintHeader(const std::string& bench_name, const std::string& artifact,
                 const BenchEnv& env) {
  std::printf("==============================================================\n");
  std::printf("TT-Rec reproduction bench: %s\n", bench_name.c_str());
  std::printf("Regenerates: %s\n", artifact.c_str());
  std::printf("Scale: tables / %lld, %lld train iters, batch %lld%s\n",
              static_cast<long long>(env.scale_div),
              static_cast<long long>(env.train_iters),
              static_cast<long long>(env.batch_size),
              env.full ? " (TTREC_FULL)" : " (set TTREC_FULL=1 for larger)");
  std::printf("==============================================================\n");
}

std::string FormatBytes(int64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

int64_t DenseEmbeddingBytes(const DatasetSpec& spec, int64_t emb_dim) {
  return spec.TotalEmbeddingParams(emb_dim) *
         static_cast<int64_t>(sizeof(float));
}

std::unique_ptr<DlrmModel> BuildSweepModel(const SweepModelConfig& cfg,
                                           Rng& rng) {
  const std::vector<int> largest =
      cfg.spec.LargestTables(cfg.num_tt_tables);
  std::vector<bool> is_tt(static_cast<size_t>(cfg.spec.num_tables()), false);
  for (int t : largest) is_tt[static_cast<size_t>(t)] = true;

  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.reserve(static_cast<size_t>(cfg.spec.num_tables()));
  for (int t = 0; t < cfg.spec.num_tables(); ++t) {
    const int64_t rows = cfg.spec.table_rows[static_cast<size_t>(t)];
    if (!is_tt[static_cast<size_t>(t)]) {
      tables.push_back(std::make_unique<DenseEmbeddingBag>(
          rows, cfg.emb_dim, PoolingMode::kSum,
          DenseEmbeddingInit::UniformScaled(), rng));
      continue;
    }
    TtEmbeddingConfig tcfg;
    tcfg.shape = MakeTtShape(rows, cfg.emb_dim, 3, cfg.tt_rank);
    if (cfg.use_cache) {
      CachedTtConfig ccfg;
      ccfg.tt = tcfg;
      ccfg.cache_capacity =
          cfg.cache_capacity > 0
              ? cfg.cache_capacity
              : std::max<int64_t>(1, rows / 10000);  // paper: 0.01%
      ccfg.warmup_iterations = cfg.warmup_iterations;
      ccfg.refresh_interval = cfg.refresh_interval;
      tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
          ccfg, cfg.tt_init, rng));
    } else {
      tables.push_back(
          std::make_unique<TtEmbeddingAdapter>(tcfg, cfg.tt_init, rng));
    }
  }
  return std::make_unique<DlrmModel>(cfg.dlrm, std::move(tables), rng);
}

SweepRunResult RunSweep(const SweepModelConfig& cfg, const TrainConfig& tc,
                        uint64_t seed) {
  Rng rng(seed);
  SyntheticCriteo data(BenchDataConfig(cfg.spec, seed));
  std::unique_ptr<DlrmModel> model = BuildSweepModel(cfg, rng);
  const TrainResult r = TrainDlrm(*model, data, tc);
  SweepRunResult out;
  out.eval = r.final_eval;
  out.ms_per_iter = r.MsPerIteration();
  out.embedding_bytes = model->EmbeddingMemoryBytes();
  return out;
}

DlrmConfig BenchDlrmConfig(const BenchEnv& env, int64_t emb_dim) {
  DlrmConfig cfg;
  cfg.emb_dim = emb_dim;
  if (env.full) {
    cfg.bottom_hidden = {512, 256, 64};
    cfg.top_hidden = {512, 256};
  } else {
    cfg.bottom_hidden = {32};
    cfg.top_hidden = {32};
  }
  return cfg;
}

SyntheticCriteoConfig BenchDataConfig(const DatasetSpec& spec, uint64_t seed,
                                      int64_t pooling_factor) {
  SyntheticCriteoConfig cfg;
  cfg.spec = spec;
  cfg.seed = seed;
  cfg.pooling_factor = pooling_factor;
  cfg.zipf_exponent = 1.15;
  cfg.teacher_scale = 3.0;
  return cfg;
}

}  // namespace ttrec::bench
