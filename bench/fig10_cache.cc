// Figure 10: the TT-Rec cache design space.
//  (a) warm-up length (fraction of training iterations) vs training time
//      and accuracy;
//  (b) cache size (fraction of the embedding table) vs training time and
//      accuracy. The paper's finding: 0.01% of the table is enough.
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace ttrec;
using namespace ttrec::bench;

namespace {

SweepRunResult RunCached(const BenchEnv& env, const DatasetSpec& spec,
                         double warmup_frac, double cache_frac,
                         const TrainConfig& tc) {
  SweepModelConfig cfg;
  cfg.spec = spec;
  cfg.num_tt_tables = 7;
  cfg.tt_rank = 32;
  cfg.use_cache = true;
  cfg.dlrm = BenchDlrmConfig(env);
  cfg.warmup_iterations =
      std::max<int64_t>(1, static_cast<int64_t>(warmup_frac *
                                                static_cast<double>(
                                                    tc.iterations)));
  cfg.refresh_interval = std::max<int64_t>(
      1, cfg.warmup_iterations / 4);
  // cache_frac expressed as a fraction of each table.
  cfg.cache_capacity = -1;  // sentinel replaced per-table below via capacity
  // BuildSweepModel sizes cache from rows/10000 when capacity == 0; encode
  // fractions by passing an explicit capacity relative to the largest
  // table. For the sweep we instead scale via rows * cache_frac using the
  // largest table as representative.
  const int64_t largest =
      spec.table_rows[static_cast<size_t>(spec.LargestTables(1)[0])];
  cfg.cache_capacity = std::max<int64_t>(
      1, static_cast<int64_t>(cache_frac * static_cast<double>(largest)));
  return RunSweep(cfg, tc, 1001);
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("fig10_cache",
              "Paper Figure 10 (cache warm-up length and cache size vs "
              "training time + accuracy)",
              env);

  const DatasetSpec spec = KaggleSpec().Scaled(env.scale_div);
  TrainConfig tc;
  tc.iterations = env.train_iters;
  tc.batch_size = env.batch_size;
  tc.lr = 0.1f;
  tc.eval_batches = 3;
  tc.eval_batch_size = 512;
  tc.log_every = 0;

  // Reference: no cache.
  SweepModelConfig plain;
  plain.spec = spec;
  plain.num_tt_tables = 7;
  plain.tt_rank = 32;
  plain.dlrm = BenchDlrmConfig(env);
  const SweepRunResult r0 = RunSweep(plain, tc, 1001);
  std::printf("no-cache TT-Rec: %.2f ms/iter, accuracy %.3f%%\n\n",
              r0.ms_per_iter, 100.0 * r0.eval.accuracy);

  std::printf("Fig 10a: warm-up sweep (cache = 0.1%% of table)\n");
  std::printf("%-12s %12s %14s %12s\n", "warmup%", "ms/iter",
              "time vs nocache", "accuracy%");
  for (double w : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    const SweepRunResult r = RunCached(env, spec, w, 0.001, tc);
    std::printf("%-12.0f %12.2f %13.2fx %12.3f\n", 100.0 * w, r.ms_per_iter,
                r.ms_per_iter / r0.ms_per_iter, 100.0 * r.eval.accuracy);
  }

  std::printf("\nFig 10b: cache-size sweep (warm-up = 10%%)\n");
  std::printf("%-12s %12s %14s %12s\n", "cache%", "ms/iter",
              "time vs nocache", "accuracy%");
  for (double c : {0.0001, 0.001, 0.01, 0.1}) {
    const SweepRunResult r = RunCached(env, spec, 0.1, c, tc);
    std::printf("%-12.4f %12.2f %13.2fx %12.3f\n", 100.0 * c, r.ms_per_iter,
                r.ms_per_iter / r0.ms_per_iter, 100.0 * r.eval.accuracy);
  }
  std::printf(
      "\nExpected shape (paper Fig 10): accuracy is insensitive to both "
      "knobs (cached rows train uncompressed, small accuracy gain); a tiny "
      "cache (0.01%%) already captures the Zipf head, so larger caches do "
      "not help; longer warm-up trades refresh overhead against hit "
      "rate.\n");
  return 0;
}
