// Closed-loop serving benchmark over the src/serve/ subsystem.
//
// A mixed dense / cached-TT DLRM is warmed on a Zipf-skewed criteo_synth
// trace, then a fixed request set is replayed through the InferenceServer
// at micro-batch caps {1, 8, 32, 128} (cap 1 is the one-request-at-a-time
// baseline). Each sweep point reports QPS and latency percentiles; before
// the sweep, every request's served logit is checked bitwise against a
// sequential single-request InferenceSession run — micro-batching must
// change throughput, never results.
//
// `--json out.json` additionally writes the sweep in the shared BENCH_*.json
// envelope (schema_version + config echo + per-point metrics) for the perf
// trajectory.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "obs/json_writer.h"
#include "serve/inference_server.h"
#include "serve/inference_session.h"

using namespace ttrec;
using namespace ttrec::bench;

namespace {

struct SweepPoint {
  int64_t max_batch = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
};

SweepPoint RunPoint(const DlrmModel& model,
                    const std::vector<serve::InferenceRequest>& requests,
                    int64_t max_batch, int producers) {
  serve::InferenceServerConfig cfg;
  cfg.max_batch_size = max_batch;
  // Closed-loop clients can never have more than `producers` requests in
  // flight, so holding an under-full batch open buys little: a short
  // coalescing window lets concurrent submissions land, then the consumer
  // greedily drains whatever queued while the previous batch was running.
  cfg.max_wait = std::chrono::microseconds(max_batch == 1 ? 0 : 25);
  serve::InferenceServer server(model, cfg);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(producers));
  const size_t n = requests.size();
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      // Closed loop: each producer replays its stripe one request at a
      // time, waiting for the logits before submitting the next.
      for (size_t i = static_cast<size_t>(p); i < n;
           i += static_cast<size_t>(producers)) {
        serve::InferenceRequest r;
        r.dense = requests[i].dense;
        r.sparse = requests[i].sparse;
        server.Submit(std::move(r)).get();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const serve::ServeMetricsSnapshot s = server.metrics().Snapshot();
  SweepPoint pt;
  pt.max_batch = max_batch;
  pt.qps = s.qps;
  pt.p50_us = s.latency_p50_us;
  pt.p95_us = s.latency_p95_us;
  pt.p99_us = s.latency_p99_us;
  pt.mean_batch = s.mean_batch_size;
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("serve_throughput",
              "serving QPS/latency vs micro-batch cap (src/serve/)", env);

  SweepModelConfig cfg;
  cfg.spec = KaggleSpec().Scaled(env.scale_div);
  cfg.num_tt_tables = 3;
  cfg.use_cache = true;
  cfg.dlrm = BenchDlrmConfig(env);
  Rng rng(17);
  std::unique_ptr<DlrmModel> model = BuildSweepModel(cfg, rng);

  SyntheticCriteoConfig data_cfg = BenchDataConfig(cfg.spec, /*seed=*/23);
  SyntheticCriteo data(data_cfg);

  // Warm the LFU caches through the training-path forward, then freeze.
  std::vector<float> warm_logits(static_cast<size_t>(env.batch_size));
  for (int64_t i = 0; i < cfg.warmup_iterations + 5; ++i) {
    model->PredictLogits(data.NextBatch(env.batch_size), warm_logits.data());
  }

  const int64_t num_requests = env.full ? 4096 : 768;
  std::vector<serve::InferenceRequest> requests;
  {
    const MiniBatch trace = data.EvalBatch(num_requests, /*eval_seed=*/5);
    requests = serve::SplitSamples(trace);

    // Correctness gate: serve the whole trace through a batching server and
    // compare every logit bitwise against a sequential session.
    serve::InferenceSession sequential(*model);
    std::vector<float> reference(static_cast<size_t>(num_requests));
    for (size_t i = 0; i < requests.size(); ++i) {
      MiniBatch one;
      one.dense = requests[i].dense;
      one.sparse = requests[i].sparse;
      one.labels.assign(1, 0.0f);
      sequential.Run(one, &reference[i]);
    }
    serve::InferenceServerConfig scfg;
    scfg.max_batch_size = 64;
    scfg.max_wait = std::chrono::microseconds(500);
    serve::InferenceServer server(*model, scfg);
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(requests.size());
    for (const serve::InferenceRequest& req : requests) {
      serve::InferenceRequest copy;
      copy.dense = req.dense;
      copy.sparse = req.sparse;
      futures.push_back(server.Submit(std::move(copy)));
    }
    int64_t mismatches = 0;
    double max_batch_seen = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      const serve::InferenceResult res = futures[i].get();
      if (res.logits.size() != 1 || res.logits[0] != reference[i]) {
        ++mismatches;
      }
      max_batch_seen =
          std::max(max_batch_seen, static_cast<double>(res.micro_batch_size));
    }
    std::printf("bitwise check: %" PRId64 " requests, %" PRId64
                " mismatches vs sequential (largest micro-batch %.0f) -> %s\n\n",
                num_requests, mismatches, max_batch_seen,
                mismatches == 0 ? "OK" : "FAILED");
    if (mismatches != 0) return 1;
  }

  // Enough closed-loop clients to saturate the largest micro-batch cap —
  // offered concurrency bounds the reachable batch size.
  const int producers = 32;
  std::printf("closed-loop producers: %d, requests per point: %" PRId64 "\n",
              producers, num_requests);
  std::printf("%-10s %10s %10s %10s %10s %12s\n", "max_batch", "qps", "p50_us",
              "p95_us", "p99_us", "mean_batch");
  double qps_unbatched = 0.0;
  double qps_best = 0.0;
  std::vector<SweepPoint> points;
  for (const int64_t max_batch : {1, 8, 32, 128}) {
    const SweepPoint pt = RunPoint(*model, requests, max_batch, producers);
    if (max_batch == 1) qps_unbatched = pt.qps;
    qps_best = std::max(qps_best, pt.qps);
    points.push_back(pt);
    std::printf("%-10" PRId64 " %10.0f %10.0f %10.0f %10.0f %12.1f\n",
                pt.max_batch, pt.qps, pt.p50_us, pt.p95_us, pt.p99_us,
                pt.mean_batch);
  }
  const double speedup =
      qps_unbatched > 0.0 ? qps_best / qps_unbatched : 0.0;
  std::printf("\nmicro-batching speedup over one-at-a-time: %.2fx\n",
              speedup);

  if (!json_path.empty()) {
    obs::JsonWriter w;
    obs::BeginBenchEnvelope(w, "serve_throughput");
    w.Key("config").BeginObject();
    w.Kv("num_requests", num_requests);
    w.Kv("producers", producers);
    w.Kv("num_tt_tables", cfg.num_tt_tables);
    w.Kv("use_cache", cfg.use_cache);
    w.EndObject();
    w.Key("points").BeginArray();
    for (const SweepPoint& pt : points) {
      w.BeginObject();
      w.Kv("max_batch", pt.max_batch);
      w.Kv("qps", pt.qps, 1);
      w.Kv("p50_us", pt.p50_us, 1);
      w.Kv("p95_us", pt.p95_us, 1);
      w.Kv("p99_us", pt.p99_us, 1);
      w.Kv("mean_batch_size", pt.mean_batch, 2);
      w.EndObject();
    }
    w.EndArray();
    w.Kv("speedup_vs_unbatched", speedup, 3);
    w.EndObject();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
