// Closed-loop serving benchmark over the src/serve/ subsystem.
//
// A mixed dense / cached-TT DLRM is warmed on a Zipf-skewed criteo_synth
// trace, then a fixed request set is replayed through the InferenceServer
// at micro-batch caps {1, 8, 32, 128} (cap 1 is the one-request-at-a-time
// baseline). Each sweep point reports QPS and latency percentiles; before
// the sweep, every request's served logit is checked bitwise against a
// sequential single-request InferenceSession run — micro-batching must
// change throughput, never results.
//
// A second, open-loop sweep measures overload behaviour: producers submit
// their whole stripe without waiting for results against a small queue with
// reject-when-full admission, a live load governor, and per-request
// deadlines. Each offered-load point reports QPS, shed rate, and deadline
// miss rate — the degradation curve the overload policy is supposed to
// shape (typed rejections instead of unbounded queueing).
//
// A third sweep measures shard scaling: an embedding-bound model (one
// large uncached TT table, high pooling factor) is served with the
// consumer's lookups fanned out across {1, 2, 4} row-range embedding
// shards. Before the sweep, a second correctness gate checks the
// ShardRouter's fan-out/join logits bitwise against the single-process
// forward for every partition strategy x shard count combination.
//
// `--json out.json` additionally writes all sweeps in the shared
// BENCH_*.json envelope (schema_version + config echo + per-point metrics)
// for the perf trajectory.
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "obs/json_writer.h"
#include "serve/inference_server.h"
#include "serve/inference_session.h"
#include "serve/serve_errors.h"
#include "shard/shard_plan.h"
#include "shard/shard_router.h"
#include "tensor/parallel.h"

using namespace ttrec;
using namespace ttrec::bench;

namespace {

struct SweepPoint {
  int64_t max_batch = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
};

// Closed loop: each producer replays its stripe one request at a time,
// waiting for the logits before submitting the next.
void ReplayClosedLoop(serve::InferenceServer& server,
                      const std::vector<serve::InferenceRequest>& requests,
                      int producers) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(producers));
  const size_t n = requests.size();
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (size_t i = static_cast<size_t>(p); i < n;
           i += static_cast<size_t>(producers)) {
        serve::InferenceRequest r;
        r.dense = requests[i].dense;
        r.sparse = requests[i].sparse;
        server.Submit(std::move(r)).get();
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

SweepPoint RunPoint(const DlrmModel& model,
                    const std::vector<serve::InferenceRequest>& requests,
                    int64_t max_batch, int producers) {
  serve::InferenceServerConfig cfg;
  cfg.max_batch_size = max_batch;
  // Closed-loop clients can never have more than `producers` requests in
  // flight, so holding an under-full batch open buys little: a short
  // coalescing window lets concurrent submissions land, then the consumer
  // greedily drains whatever queued while the previous batch was running.
  cfg.max_wait = std::chrono::microseconds(max_batch == 1 ? 0 : 25);
  serve::InferenceServer server(model, cfg);
  ReplayClosedLoop(server, requests, producers);

  const serve::ServeMetricsSnapshot s = server.metrics().Snapshot();
  SweepPoint pt;
  pt.max_batch = max_batch;
  pt.qps = s.qps;
  pt.p50_us = s.latency_p50_us;
  pt.p95_us = s.latency_p95_us;
  pt.p99_us = s.latency_p99_us;
  pt.mean_batch = s.mean_batch_size;
  return pt;
}

struct ShardPoint {
  int num_shards = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
};

ShardPoint RunShardPoint(const DlrmModel& model,
                         const std::vector<serve::InferenceRequest>& requests,
                         int num_shards, int producers) {
  // One pool worker per shard: each shard models a fixed-compute node. On a
  // single host the nested TT kernel would otherwise grab every idle core
  // no matter the shard count and flatten the curve, so the sweep would
  // measure the machine, not the router — with per-shard compute pinned,
  // near-linear QPS means the split/fan-out/join overhead is small and the
  // row-range slices are balanced.
  ThreadPool::SetGlobalThreads(num_shards);
  ShardPoint pt;
  pt.num_shards = num_shards;
  {
    serve::InferenceServerConfig cfg;
    cfg.max_batch_size = 32;
    cfg.max_wait = std::chrono::microseconds(25);
    cfg.num_shards = num_shards;
    cfg.partition = shard::PartitionStrategy::kTable;
    serve::InferenceServer server(model, cfg);
    ReplayClosedLoop(server, requests, producers);

    const serve::ServeMetricsSnapshot s = server.metrics().Snapshot();
    pt.qps = s.qps;
    pt.p50_us = s.latency_p50_us;
    pt.p95_us = s.latency_p95_us;
  }
  ThreadPool::SetGlobalThreads(
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  return pt;
}

struct OverloadPoint {
  int producers = 0;
  int64_t submitted = 0;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t deadline_missed = 0;
  int64_t failed = 0;
  double qps = 0.0;
  int64_t queue_high_water = 0;
  int64_t to_degraded = 0;
  int64_t to_shedding = 0;

  double shed_rate() const {
    return submitted > 0 ? static_cast<double>(shed) / submitted : 0.0;
  }
  double miss_rate() const {
    return submitted > 0 ? static_cast<double>(deadline_missed) / submitted
                         : 0.0;
  }
};

OverloadPoint RunOverloadPoint(
    const DlrmModel& model,
    const std::vector<serve::InferenceRequest>& requests, int producers,
    std::chrono::microseconds deadline_budget) {
  serve::InferenceServerConfig cfg;
  cfg.max_batch_size = 32;
  cfg.max_wait = std::chrono::microseconds(25);
  // Small queue + fail-fast admission: offered load beyond capacity turns
  // into typed ServerOverloaded rejections instead of unbounded queueing.
  cfg.queue_capacity = 128;
  cfg.admission = serve::AdmissionPolicy::kRejectWhenFull;
  cfg.governor.tick = std::chrono::milliseconds(1);
  serve::InferenceServer server(model, cfg);

  const size_t n = requests.size();
  std::vector<std::vector<std::future<serve::InferenceResult>>> futures(
      static_cast<size_t>(producers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    futures[static_cast<size_t>(p)].reserve(n / static_cast<size_t>(producers) +
                                            1);
    threads.emplace_back([&, p] {
      // Open loop: submit the whole stripe without waiting for results, so
      // offered load scales with the producer count rather than being
      // throttled to the service rate.
      for (size_t i = static_cast<size_t>(p); i < n;
           i += static_cast<size_t>(producers)) {
        serve::InferenceRequest r;
        r.dense = requests[i].dense;
        r.sparse = requests[i].sparse;
        r.deadline = std::chrono::steady_clock::now() + deadline_budget;
        futures[static_cast<size_t>(p)].push_back(server.Submit(std::move(r)));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  OverloadPoint pt;
  pt.producers = producers;
  for (auto& stripe : futures) {
    for (std::future<serve::InferenceResult>& f : stripe) {
      ++pt.submitted;
      try {
        f.get();
        ++pt.ok;
      } catch (const serve::ServerOverloaded&) {
        ++pt.shed;
      } catch (const serve::DeadlineExceeded&) {
        ++pt.deadline_missed;
      } catch (...) {
        ++pt.failed;
      }
    }
  }

  const serve::ServeMetricsSnapshot s = server.metrics().Snapshot();
  pt.qps = s.qps;
  pt.queue_high_water = static_cast<int64_t>(server.queue_high_water());
  pt.to_degraded =
      s.health_transitions[static_cast<int>(serve::HealthState::kDegraded)];
  pt.to_shedding =
      s.health_transitions[static_cast<int>(serve::HealthState::kShedding)];
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("serve_throughput",
              "serving QPS/latency vs micro-batch cap (src/serve/)", env);

  SweepModelConfig cfg;
  cfg.spec = KaggleSpec().Scaled(env.scale_div);
  cfg.num_tt_tables = 3;
  cfg.use_cache = true;
  cfg.dlrm = BenchDlrmConfig(env);
  Rng rng(17);
  // Shared (not unique) ownership so the ShardRouter gate below can pin the
  // model the same way the sharded server does.
  std::shared_ptr<DlrmModel> model = BuildSweepModel(cfg, rng);

  SyntheticCriteoConfig data_cfg = BenchDataConfig(cfg.spec, /*seed=*/23);
  SyntheticCriteo data(data_cfg);

  // Warm the LFU caches through the training-path forward, then freeze.
  std::vector<float> warm_logits(static_cast<size_t>(env.batch_size));
  for (int64_t i = 0; i < cfg.warmup_iterations + 5; ++i) {
    model->PredictLogits(data.NextBatch(env.batch_size), warm_logits.data());
  }

  const int64_t num_requests = env.full ? 4096 : 768;
  std::vector<serve::InferenceRequest> requests;
  std::vector<float> reference(static_cast<size_t>(num_requests));
  {
    const MiniBatch trace = data.EvalBatch(num_requests, /*eval_seed=*/5);
    requests = serve::SplitSamples(trace);

    // Correctness gate: serve the whole trace through a batching server and
    // compare every logit bitwise against a sequential session.
    serve::InferenceSession sequential(*model);
    for (size_t i = 0; i < requests.size(); ++i) {
      MiniBatch one;
      one.dense = requests[i].dense;
      one.sparse = requests[i].sparse;
      one.labels.assign(1, 0.0f);
      sequential.Run(one, &reference[i]);
    }
    serve::InferenceServerConfig scfg;
    scfg.max_batch_size = 64;
    scfg.max_wait = std::chrono::microseconds(500);
    serve::InferenceServer server(*model, scfg);
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(requests.size());
    for (const serve::InferenceRequest& req : requests) {
      serve::InferenceRequest copy;
      copy.dense = req.dense;
      copy.sparse = req.sparse;
      futures.push_back(server.Submit(std::move(copy)));
    }
    int64_t mismatches = 0;
    double max_batch_seen = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      const serve::InferenceResult res = futures[i].get();
      if (res.logits.size() != 1 || res.logits[0] != reference[i]) {
        ++mismatches;
      }
      max_batch_seen =
          std::max(max_batch_seen, static_cast<double>(res.micro_batch_size));
    }
    std::printf("bitwise check: %" PRId64 " requests, %" PRId64
                " mismatches vs sequential (largest micro-batch %.0f) -> %s\n\n",
                num_requests, mismatches, max_batch_seen,
                mismatches == 0 ? "OK" : "FAILED");
    if (mismatches != 0) return 1;
  }

  // Sharded correctness gate: the router's fan-out/join must reproduce the
  // single-process logits bitwise for every partition strategy and shard
  // count — same trace, same sequential reference as the gate above.
  {
    const std::shared_ptr<const DlrmModel> cmodel = model;
    const MiniBatch trace = data.EvalBatch(num_requests, /*eval_seed=*/5);
    int64_t mismatches = 0;
    for (const shard::PartitionStrategy strategy :
         {shard::PartitionStrategy::kTable,
          shard::PartitionStrategy::kRowRange}) {
      for (const int num_shards : {1, 2, 4}) {
        auto plan = std::make_shared<const shard::ShardPlan>(
            shard::MakeShardPlanForModel(*cmodel, strategy, num_shards));
        shard::ShardRouter router(cmodel, plan,
                                  shard::BuildShards(cmodel, plan));
        std::vector<float> out(static_cast<size_t>(num_requests));
        router.Run(trace, out.data());
        for (size_t i = 0; i < out.size(); ++i) {
          if (std::memcmp(&out[i], &reference[i], sizeof(float)) != 0) {
            ++mismatches;
          }
        }
      }
    }
    std::printf("sharded bitwise check: strategies {table,row} x shards "
                "{1,2,4}, %" PRId64 " mismatches vs single-process -> %s\n\n",
                mismatches, mismatches == 0 ? "OK" : "FAILED");
    if (mismatches != 0) return 1;
  }

  // Enough closed-loop clients to saturate the largest micro-batch cap —
  // offered concurrency bounds the reachable batch size.
  const int producers = 32;
  std::printf("closed-loop producers: %d, requests per point: %" PRId64 "\n",
              producers, num_requests);
  std::printf("%-10s %10s %10s %10s %10s %12s\n", "max_batch", "qps", "p50_us",
              "p95_us", "p99_us", "mean_batch");
  double qps_unbatched = 0.0;
  double qps_best = 0.0;
  std::vector<SweepPoint> points;
  for (const int64_t max_batch : {1, 8, 32, 128}) {
    const SweepPoint pt = RunPoint(*model, requests, max_batch, producers);
    if (max_batch == 1) qps_unbatched = pt.qps;
    qps_best = std::max(qps_best, pt.qps);
    points.push_back(pt);
    std::printf("%-10" PRId64 " %10.0f %10.0f %10.0f %10.0f %12.1f\n",
                pt.max_batch, pt.qps, pt.p50_us, pt.p95_us, pt.p99_us,
                pt.mean_batch);
  }
  const double speedup =
      qps_unbatched > 0.0 ? qps_best / qps_unbatched : 0.0;
  std::printf("\nmicro-batching speedup over one-at-a-time: %.2fx\n",
              speedup);

  // Overload sweep: open-loop offered load vs graceful degradation. Every
  // submitted request resolves — as logits, a typed ServerOverloaded shed,
  // or a typed DeadlineExceeded miss — and "other" failures must be zero.
  const auto deadline_budget = std::chrono::milliseconds(env.full ? 100 : 50);
  std::printf("\noverload sweep (open-loop, queue capacity 128, "
              "reject-when-full, %lld ms deadline):\n",
              static_cast<long long>(deadline_budget.count()));
  std::printf("%-10s %10s %10s %10s %10s %12s %12s\n", "producers", "qps",
              "ok", "shed", "missed", "shed_rate", "miss_rate");
  std::vector<OverloadPoint> overload_points;
  bool overload_clean = true;
  for (const int producers_at : {2, 8, 32}) {
    const OverloadPoint pt = RunOverloadPoint(
        *model, requests, producers_at,
        std::chrono::duration_cast<std::chrono::microseconds>(deadline_budget));
    overload_points.push_back(pt);
    overload_clean = overload_clean && pt.failed == 0 &&
                     pt.ok + pt.shed + pt.deadline_missed == pt.submitted;
    std::printf("%-10d %10.0f %10" PRId64 " %10" PRId64 " %10" PRId64
                " %11.1f%% %11.1f%%\n",
                pt.producers, pt.qps, pt.ok, pt.shed, pt.deadline_missed,
                100.0 * pt.shed_rate(), 100.0 * pt.miss_rate());
  }
  std::printf("every rejection typed (no untyped failures) -> %s\n",
              overload_clean ? "OK" : "FAILED");
  if (!overload_clean) return 1;

  // Shard scaling sweep. Four equal uncached TT tables with a high pooling
  // factor make the workload embedding-bound, and table partitioning keeps
  // every bag on the single-owner fast path — each shard runs the
  // unmodified pooled kernel on its own tables, so the sweep isolates the
  // router's split/fan-out/join cost. (Row-range sharding of bags that span
  // the whole table is the all-to-all worst case — every bag pays a raw-row
  // fetch and a router-side join — and is covered by the correctness gate,
  // not chased for throughput here.)
  SweepModelConfig shard_cfg;
  shard_cfg.spec.name = "shard_sweep";
  shard_cfg.spec.table_rows.assign(4, env.full ? 250000 : 100000);
  shard_cfg.num_tt_tables = 4;
  shard_cfg.tt_rank = 32;
  shard_cfg.use_cache = false;
  shard_cfg.dlrm = BenchDlrmConfig(env);
  Rng shard_rng(29);
  const std::unique_ptr<DlrmModel> shard_model =
      BuildSweepModel(shard_cfg, shard_rng);
  const int64_t shard_pooling = 256;
  SyntheticCriteo shard_data(
      BenchDataConfig(shard_cfg.spec, /*seed=*/31, shard_pooling));
  const int64_t num_shard_requests = env.full ? 1024 : 256;
  const std::vector<serve::InferenceRequest> shard_requests =
      serve::SplitSamples(shard_data.EvalBatch(num_shard_requests,
                                               /*eval_seed=*/7));
  const int host_cpus =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::printf("\nshard sweep (table partition, 4 x %lld-row TT tables, "
              "pooling factor %lld, one pool worker per shard):\n",
              static_cast<long long>(shard_cfg.spec.table_rows[0]),
              static_cast<long long>(shard_pooling));
  if (host_cpus < 4) {
    std::printf("note: host has %d CPU(s); shard speedups are capped by the "
                "host, expect a flat curve below %d shards' worth of cores\n",
                host_cpus, host_cpus);
  }
  std::printf("%-10s %10s %10s %10s %10s\n", "shards", "qps", "p50_us",
              "p95_us", "speedup");
  std::vector<ShardPoint> shard_points;
  double qps_one_shard = 0.0;
  for (const int num_shards : {1, 2, 4}) {
    const ShardPoint pt =
        RunShardPoint(*shard_model, shard_requests, num_shards, producers);
    if (num_shards == 1) qps_one_shard = pt.qps;
    shard_points.push_back(pt);
    std::printf("%-10d %10.0f %10.0f %10.0f %9.2fx\n", pt.num_shards, pt.qps,
                pt.p50_us, pt.p95_us,
                qps_one_shard > 0.0 ? pt.qps / qps_one_shard : 0.0);
  }

  if (!json_path.empty()) {
    obs::JsonWriter w;
    obs::BeginBenchEnvelope(w, "serve_throughput");
    w.Key("config").BeginObject();
    w.Kv("num_requests", num_requests);
    w.Kv("producers", producers);
    w.Kv("num_tt_tables", cfg.num_tt_tables);
    w.Kv("use_cache", cfg.use_cache);
    w.EndObject();
    w.Key("points").BeginArray();
    for (const SweepPoint& pt : points) {
      w.BeginObject();
      w.Kv("max_batch", pt.max_batch);
      w.Kv("qps", pt.qps, 1);
      w.Kv("p50_us", pt.p50_us, 1);
      w.Kv("p95_us", pt.p95_us, 1);
      w.Kv("p99_us", pt.p99_us, 1);
      w.Kv("mean_batch_size", pt.mean_batch, 2);
      w.EndObject();
    }
    w.EndArray();
    w.Kv("speedup_vs_unbatched", speedup, 3);
    w.Key("overload").BeginObject();
    w.Key("config").BeginObject();
    w.Kv("queue_capacity", static_cast<int64_t>(128));
    w.Kv("admission", "reject_when_full");
    w.Kv("deadline_budget_ms", static_cast<int64_t>(deadline_budget.count()));
    w.EndObject();
    w.Key("points").BeginArray();
    for (const OverloadPoint& pt : overload_points) {
      w.BeginObject();
      w.Kv("producers", static_cast<int64_t>(pt.producers));
      w.Kv("submitted", pt.submitted);
      w.Kv("ok", pt.ok);
      w.Kv("shed", pt.shed);
      w.Kv("deadline_missed", pt.deadline_missed);
      w.Kv("qps", pt.qps, 1);
      w.Kv("shed_rate", pt.shed_rate(), 4);
      w.Kv("deadline_miss_rate", pt.miss_rate(), 4);
      w.Kv("queue_high_water", pt.queue_high_water);
      w.Kv("to_degraded", pt.to_degraded);
      w.Kv("to_shedding", pt.to_shedding);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    w.Key("shards").BeginObject();
    w.Key("config").BeginObject();
    w.Kv("num_tables", static_cast<int64_t>(shard_cfg.spec.num_tables()));
    w.Kv("table_rows", shard_cfg.spec.table_rows[0]);
    w.Kv("tt_rank", shard_cfg.tt_rank);
    w.Kv("pooling_factor", shard_pooling);
    w.Kv("partition", "table");
    w.Kv("workers_per_shard", static_cast<int64_t>(1));
    // Speedup is capped by min(num_shards, host_cpus); emit the cap so the
    // perf trajectory can tell a small host from a sharding regression.
    w.Kv("host_cpus", static_cast<int64_t>(host_cpus));
    w.Kv("num_requests", num_shard_requests);
    w.EndObject();
    // The sharded-vs-single bitwise gate ran before the sweeps; reaching
    // this writer means it passed for every strategy x shard count combo.
    w.Kv("identity_ok", true);
    w.Key("points").BeginArray();
    for (const ShardPoint& pt : shard_points) {
      w.BeginObject();
      w.Kv("num_shards", static_cast<int64_t>(pt.num_shards));
      w.Kv("qps", pt.qps, 1);
      w.Kv("p50_us", pt.p50_us, 1);
      w.Kv("p95_us", pt.p95_us, 1);
      w.Kv("speedup_vs_one_shard",
           qps_one_shard > 0.0 ? pt.qps / qps_one_shard : 0.0, 3);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    w.EndObject();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
