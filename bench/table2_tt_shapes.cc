// Table 2: TT decomposition parameters of Kaggle's 7 largest embedding
// tables — core shapes, parameter counts, and memory reductions for
// R in {16, 32, 64}. Pure arithmetic over the real cardinalities, so these
// rows reproduce the paper EXACTLY (the hand-picked paper factorizations),
// with the auto-shaper's choice printed alongside.
#include <cstdio>

#include "harness.h"
#include "tt/tt_shapes.h"

using namespace ttrec;
using namespace ttrec::bench;

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("table2_tt_shapes",
              "Paper Table 2 (Kaggle's 7 largest tables: TT shapes, params, "
              "memory reduction)",
              env);

  const DatasetSpec& spec = KaggleSpec();
  const std::vector<int> top7 = spec.LargestTables(7);
  const int64_t dim = 16;
  const std::vector<int64_t> ranks = {16, 32, 64};

  std::printf("%-10s %-18s | %-28s | %-10s %-10s %-10s | %-8s %-8s %-8s\n",
              "#rows", "factors", "core shapes (R=rank)", "P(R=16)",
              "P(R=32)", "P(R=64)", "x16", "x32", "x64");
  for (int t : top7) {
    const int64_t rows = spec.table_rows[static_cast<size_t>(t)];
    std::vector<int64_t> factors = PaperRowFactors(rows);
    if (factors.empty()) factors = FactorizeRows(rows, 3);
    std::vector<int64_t> params;
    std::vector<double> reductions;
    for (int64_t r : ranks) {
      const TtShape s = MakeTtShapeExplicit(rows, dim, factors, {2, 2, 4}, r);
      params.push_back(s.TotalParams());
      reductions.push_back(s.CompressionRatio());
    }
    std::printf(
        "%-10lld (%3lld,%3lld,%3lld)      | (1,m1,2,R)(R,m2,2,R)(R,m3,4,1) "
        "| %-10lld %-10lld %-10lld | %-8.0f %-8.0f %-8.0f\n",
        static_cast<long long>(rows), static_cast<long long>(factors[0]),
        static_cast<long long>(factors[1]),
        static_cast<long long>(factors[2]),
        static_cast<long long>(params[0]), static_cast<long long>(params[1]),
        static_cast<long long>(params[2]), reductions[0], reductions[1],
        reductions[2]);
  }

  std::printf("\nAuto-shaper (FactorizeRows) vs paper's hand-picked factors, "
              "R=32:\n");
  std::printf("%-10s %-20s %-20s %10s %10s\n", "#rows", "paper", "auto",
              "P(paper)", "P(auto)");
  for (int t : top7) {
    const int64_t rows = spec.table_rows[static_cast<size_t>(t)];
    const std::vector<int64_t> paper = PaperRowFactors(rows);
    const std::vector<int64_t> autof = FactorizeRows(rows, 3);
    const TtShape sp = MakeTtShapeExplicit(rows, dim, paper, {2, 2, 4}, 32);
    const TtShape sa = MakeTtShapeExplicit(rows, dim, autof, {2, 2, 4}, 32);
    std::printf("%-10lld (%3lld,%3lld,%3lld)       (%3lld,%3lld,%3lld)       "
                "%10lld %10lld\n",
                static_cast<long long>(rows),
                static_cast<long long>(paper[0]),
                static_cast<long long>(paper[1]),
                static_cast<long long>(paper[2]),
                static_cast<long long>(autof[0]),
                static_cast<long long>(autof[1]),
                static_cast<long long>(autof[2]),
                static_cast<long long>(sp.TotalParams()),
                static_cast<long long>(sa.TotalParams()));
  }
  std::printf("\nExpected: row 1 (10131227 rows) gives 135040 / 495360 / "
              "1891840 params and ~1200x / ~327x / ~86x reductions, matching "
              "the paper exactly.\n");
  return 0;
}
