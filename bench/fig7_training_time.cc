// Figure 7: normalized end-to-end DLRM training time of TT-Rec across TT
// ranks (8/16/32/64) and number of compressed tables (3/5/7), relative to
// the uncompressed baseline (= 1.0).
//
// `--json out.json` additionally writes the sweep as machine-readable JSON
// (ms/iter, normalized time, embedding bytes per cell) for the perf
// trajectory.
//
// `--pipeline-json out.json` runs the lookahead-overlap sweep instead:
// TrainDlrm over the skew-shift workload (all tables cached TT) at
// lookahead depths {0, 1, 2, 4, 8}, warm phase then measured phase, and
// reports steps/sec + warm-cache hit rate per depth. On a single-core host
// the depth >= 1 win comes from prefetch turning frozen-cache misses after
// a phase shift back into hits (one batched TT materialization instead of
// per-lookup forward + backward TT chains). The run is gated: every
// depth >= 1 must beat depth 0's hit rate and the best depth >= 1 must
// beat depth 0's steps/sec, else exit 1.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/skew_shift_source.h"
#include "dlrm/embedding_adapters.h"
#include "harness.h"
#include "obs/json_writer.h"

using namespace ttrec;
using namespace ttrec::bench;

namespace {

struct Cell {
  int tables = 0;
  long long rank = 0;
  double ms_per_iter = 0.0;
  double normalized = 0.0;
  long long embedding_bytes = 0;
};

int WriteJson(const std::string& path, double baseline_ms,
              long long baseline_bytes, const std::vector<Cell>& cells) {
  // Shared BENCH_*.json envelope (obs/json_writer.h); cell field names are
  // the stable contract — only schema_version is new.
  ttrec::obs::JsonWriter w;
  ttrec::obs::BeginBenchEnvelope(w, "fig7_training_time");
  w.Kv("baseline_ms_per_iter", baseline_ms, 4);
  w.Kv("baseline_embedding_bytes", static_cast<int64_t>(baseline_bytes));
  w.Key("cells").BeginArray();
  for (const Cell& c : cells) {
    w.BeginObject();
    w.Kv("tt_tables", c.tables);
    w.Kv("rank", static_cast<int64_t>(c.rank));
    w.Kv("ms_per_iter", c.ms_per_iter, 4);
    w.Kv("normalized_time", c.normalized, 4);
    w.Kv("embedding_bytes", static_cast<int64_t>(c.embedding_bytes));
    w.EndObject();
  }
  w.EndArray().EndObject();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(w.str().data(), 1, w.str().size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

// --- Lookahead-overlap sweep (--pipeline-json) -----------------------------

struct PipelineCell {
  long long depth = 0;
  double steps_per_sec = 0.0;
  double hit_rate = 0.0;
  long long prefetched_rows = 0;
  double data_wait_s = 0.0;
  double prefetch_s = 0.0;
};

SkewShiftSourceConfig PipelineWorkload() {
  SkewShiftSourceConfig cfg;
  cfg.scenario.tables = {
      {4000, 1.45, 8.0}, {3000, 1.35, 1.0}, {2000, 1.3, 1.0}};
  cfg.scenario.lookups_per_iteration = 24;
  // Warm run = 50 iters x batch 32 = 1600 samples, so the phase boundary
  // lands exactly at the start of the measured window: every table's
  // rank->row bijection reshuffles there, the frozen caches go cold, and
  // depth 0 pays per-lookup TT chains for the whole measurement while
  // prefetch re-admits the (small, high-Zipf) new hot set.
  cfg.scenario.phase_length = 1600;
  cfg.scenario.seed = 0xF16;
  cfg.num_dense = 4;
  return cfg;
}

std::unique_ptr<DlrmModel> PipelineModel(const SkewShiftSourceConfig& wl,
                                         uint64_t seed) {
  Rng rng(seed);
  DlrmConfig dc;
  dc.num_dense = wl.num_dense;
  dc.emb_dim = 16;
  dc.bottom_hidden = {16};
  dc.top_hidden = {32};
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  for (const SkewShiftTableConfig& t : wl.scenario.tables) {
    CachedTtConfig cc;
    cc.tt.shape = MakeTtShape(t.rows, dc.emb_dim, 3, 16);
    cc.cache_capacity = 256;
    cc.warmup_iterations = 40;  // frozen well before the measured phase
    cc.refresh_interval = 10;
    tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
        cc, TtInit::kGaussian, rng));
  }
  return std::make_unique<DlrmModel>(dc, std::move(tables), rng);
}

int RunPipelineSweep(const std::string& json_path) {
  using Clock = std::chrono::steady_clock;
  constexpr int64_t kWarmIters = 50;
  constexpr int64_t kMeasIters = 40;
  const SkewShiftSourceConfig wl = PipelineWorkload();

  std::vector<PipelineCell> cells;
  std::printf("%-7s %-12s %-10s %-12s %-12s %-10s\n", "depth", "steps/sec",
              "hit_rate", "prefetched", "data_wait_s", "prefetch_s");
  for (const int64_t depth : {0, 1, 2, 4, 8}) {
    auto model = PipelineModel(wl, 42);
    SkewShiftBatchSource data(wl);

    TrainConfig tc;
    tc.batch_size = 32;
    tc.eval_batches = 0;
    tc.log_every = 0;
    tc.lookahead_depth = depth;
    tc.lookahead_threaded = true;

    tc.iterations = kWarmIters;
    TrainDlrm(*model, data, tc);  // warm: caches freeze mid-way through
    for (int t = 0; t < model->num_tables(); ++t) {
      model->table(t).cached_bag()->ResetStats();
    }

    tc.iterations = kMeasIters;
    const auto m0 = Clock::now();
    const TrainResult r = TrainDlrm(*model, data, tc);
    const double wall = std::chrono::duration<double>(Clock::now() - m0).count();

    int64_t hits = 0, misses = 0;
    for (int t = 0; t < model->num_tables(); ++t) {
      const LfuRowCache& c = model->table(t).cached_bag()->cache();
      hits += c.hits();
      misses += c.misses();
    }
    PipelineCell cell;
    cell.depth = static_cast<long long>(depth);
    cell.steps_per_sec = static_cast<double>(kMeasIters) / wall;
    cell.hit_rate = hits + misses > 0
                        ? static_cast<double>(hits) /
                              static_cast<double>(hits + misses)
                        : 0.0;
    cell.prefetched_rows = static_cast<long long>(r.prefetched_rows);
    cell.data_wait_s = r.data_seconds;
    cell.prefetch_s = r.prefetch_seconds;
    cells.push_back(cell);
    std::printf("%-7lld %-12.2f %-10.4f %-12lld %-12.4f %-10.4f\n", cell.depth,
                cell.steps_per_sec, cell.hit_rate, cell.prefetched_rows,
                cell.data_wait_s, cell.prefetch_s);
  }

  // Gates: prefetch must convert post-shift misses into hits at every
  // depth >= 1, and the overlap must pay for itself somewhere.
  const PipelineCell& base = cells.front();
  bool ok = true;
  double best_pipelined = 0.0;
  for (size_t i = 1; i < cells.size(); ++i) {
    best_pipelined = std::max(best_pipelined, cells[i].steps_per_sec);
    if (cells[i].hit_rate <= base.hit_rate) {
      std::fprintf(stderr,
                   "GATE FAIL: depth %lld hit rate %.4f <= depth 0's %.4f\n",
                   cells[i].depth, cells[i].hit_rate, base.hit_rate);
      ok = false;
    }
  }
  if (best_pipelined <= base.steps_per_sec) {
    std::fprintf(stderr,
                 "GATE FAIL: best pipelined %.2f steps/sec <= depth 0's %.2f\n",
                 best_pipelined, base.steps_per_sec);
    ok = false;
  }
  if (ok) {
    std::printf("\ngates passed: hit rate up at every depth >= 1; best "
                "pipelined %.2f vs %.2f steps/sec at depth 0\n",
                best_pipelined, base.steps_per_sec);
  }

  ttrec::obs::JsonWriter w;
  ttrec::obs::BeginBenchEnvelope(w, "fig7_pipeline_overlap");
  w.Kv("warm_iters", static_cast<int64_t>(kWarmIters));
  w.Kv("measured_iters", static_cast<int64_t>(kMeasIters));
  w.Kv("batch_size", static_cast<int64_t>(32));
  w.Key("depths").BeginArray();
  for (const PipelineCell& c : cells) {
    w.BeginObject();
    w.Kv("depth", static_cast<int64_t>(c.depth));
    w.Kv("steps_per_sec", c.steps_per_sec, 4);
    w.Kv("hit_rate", c.hit_rate, 4);
    w.Kv("prefetched_rows", static_cast<int64_t>(c.prefetched_rows));
    w.Kv("data_wait_s", c.data_wait_s, 4);
    w.Kv("prefetch_s", c.prefetch_s, 4);
    w.EndObject();
  }
  w.EndArray().EndObject();
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fwrite(w.str().data(), 1, w.str().size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string pipeline_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--pipeline-json") == 0 && i + 1 < argc) {
      pipeline_json_path = argv[++i];
    }
  }

  if (!pipeline_json_path.empty()) {
    const BenchEnv env = BenchEnv::FromEnvironment();
    PrintHeader("fig7_pipeline_overlap",
                "Lookahead overlap sweep (steps/sec + hit rate vs depth)",
                env);
    return RunPipelineSweep(pipeline_json_path);
  }

  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("fig7_training_time",
              "Paper Figure 7 (normalized training time vs rank x #tables)",
              env);

  const DatasetSpec spec = KaggleSpec().Scaled(env.scale_div);
  TrainConfig tc;
  tc.iterations = std::max<int64_t>(30, env.train_iters / 4);
  tc.batch_size = env.batch_size;
  tc.lr = 0.1f;
  tc.eval_batches = 0;  // timing only
  tc.log_every = 0;

  SweepModelConfig base;
  base.spec = spec;
  base.num_tt_tables = 0;
  base.dlrm = BenchDlrmConfig(env);
  const SweepRunResult rb = RunSweep(base, tc, 99);
  std::printf("baseline: %.3f ms/iter (paper: 12.14 ms/iter on V100, "
              "absolute values not comparable)\n\n",
              rb.ms_per_iter);

  std::vector<Cell> cells;
  const std::vector<int64_t> ranks = {8, 16, 32, 64};
  std::printf("normalized training time (baseline = 1.00):\n%-10s", "TT-Emb.");
  for (int64_t r : ranks) std::printf(" rank=%-7lld", static_cast<long long>(r));
  std::printf("  emb reduction @r32\n");
  for (int k : {3, 5, 7}) {
    std::printf("%-10d", k);
    double red32 = 0.0;
    for (int64_t rank : ranks) {
      SweepModelConfig cfg = base;
      cfg.num_tt_tables = k;
      cfg.tt_rank = rank;
      const SweepRunResult r = RunSweep(cfg, tc, 99);
      std::printf(" %-12.2f", r.ms_per_iter / rb.ms_per_iter);
      cells.push_back(Cell{k, static_cast<long long>(rank), r.ms_per_iter,
                           r.ms_per_iter / rb.ms_per_iter,
                           static_cast<long long>(r.embedding_bytes)});
      if (rank == 32) {
        red32 = static_cast<double>(rb.embedding_bytes) /
                static_cast<double>(r.embedding_bytes);
      }
    }
    std::printf("  %.1fx\n", red32);
  }
  std::printf(
      "\nExpected shape (paper Fig 7): overhead grows with rank and with "
      "#tables compressed; at the optimal rank the overhead is ~10-15%%.\n");

  if (!json_path.empty()) {
    return WriteJson(json_path, rb.ms_per_iter,
                     static_cast<long long>(rb.embedding_bytes), cells);
  }
  return 0;
}
