// Figure 7: normalized end-to-end DLRM training time of TT-Rec across TT
// ranks (8/16/32/64) and number of compressed tables (3/5/7), relative to
// the uncompressed baseline (= 1.0).
//
// `--json out.json` additionally writes the sweep as machine-readable JSON
// (ms/iter, normalized time, embedding bytes per cell) for the perf
// trajectory.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness.h"
#include "obs/json_writer.h"

using namespace ttrec;
using namespace ttrec::bench;

namespace {

struct Cell {
  int tables = 0;
  long long rank = 0;
  double ms_per_iter = 0.0;
  double normalized = 0.0;
  long long embedding_bytes = 0;
};

int WriteJson(const std::string& path, double baseline_ms,
              long long baseline_bytes, const std::vector<Cell>& cells) {
  // Shared BENCH_*.json envelope (obs/json_writer.h); cell field names are
  // the stable contract — only schema_version is new.
  ttrec::obs::JsonWriter w;
  ttrec::obs::BeginBenchEnvelope(w, "fig7_training_time");
  w.Kv("baseline_ms_per_iter", baseline_ms, 4);
  w.Kv("baseline_embedding_bytes", static_cast<int64_t>(baseline_bytes));
  w.Key("cells").BeginArray();
  for (const Cell& c : cells) {
    w.BeginObject();
    w.Kv("tt_tables", c.tables);
    w.Kv("rank", static_cast<int64_t>(c.rank));
    w.Kv("ms_per_iter", c.ms_per_iter, 4);
    w.Kv("normalized_time", c.normalized, 4);
    w.Kv("embedding_bytes", static_cast<int64_t>(c.embedding_bytes));
    w.EndObject();
  }
  w.EndArray().EndObject();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(w.str().data(), 1, w.str().size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("fig7_training_time",
              "Paper Figure 7 (normalized training time vs rank x #tables)",
              env);

  const DatasetSpec spec = KaggleSpec().Scaled(env.scale_div);
  TrainConfig tc;
  tc.iterations = std::max<int64_t>(30, env.train_iters / 4);
  tc.batch_size = env.batch_size;
  tc.lr = 0.1f;
  tc.eval_batches = 0;  // timing only
  tc.log_every = 0;

  SweepModelConfig base;
  base.spec = spec;
  base.num_tt_tables = 0;
  base.dlrm = BenchDlrmConfig(env);
  const SweepRunResult rb = RunSweep(base, tc, 99);
  std::printf("baseline: %.3f ms/iter (paper: 12.14 ms/iter on V100, "
              "absolute values not comparable)\n\n",
              rb.ms_per_iter);

  std::vector<Cell> cells;
  const std::vector<int64_t> ranks = {8, 16, 32, 64};
  std::printf("normalized training time (baseline = 1.00):\n%-10s", "TT-Emb.");
  for (int64_t r : ranks) std::printf(" rank=%-7lld", static_cast<long long>(r));
  std::printf("  emb reduction @r32\n");
  for (int k : {3, 5, 7}) {
    std::printf("%-10d", k);
    double red32 = 0.0;
    for (int64_t rank : ranks) {
      SweepModelConfig cfg = base;
      cfg.num_tt_tables = k;
      cfg.tt_rank = rank;
      const SweepRunResult r = RunSweep(cfg, tc, 99);
      std::printf(" %-12.2f", r.ms_per_iter / rb.ms_per_iter);
      cells.push_back(Cell{k, static_cast<long long>(rank), r.ms_per_iter,
                           r.ms_per_iter / rb.ms_per_iter,
                           static_cast<long long>(r.embedding_bytes)});
      if (rank == 32) {
        red32 = static_cast<double>(rb.embedding_bytes) /
                static_cast<double>(r.embedding_bytes);
      }
    }
    std::printf("  %.1fx\n", red32);
  }
  std::printf(
      "\nExpected shape (paper Fig 7): overhead grows with rank and with "
      "#tables compressed; at the optimal rank the overhead is ~10-15%%.\n");

  if (!json_path.empty()) {
    return WriteJson(json_path, rb.ms_per_iter,
                     static_cast<long long>(rb.embedding_bytes), cells);
  }
  return 0;
}
