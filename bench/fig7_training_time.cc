// Figure 7: normalized end-to-end DLRM training time of TT-Rec across TT
// ranks (8/16/32/64) and number of compressed tables (3/5/7), relative to
// the uncompressed baseline (= 1.0).
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace ttrec;
using namespace ttrec::bench;

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("fig7_training_time",
              "Paper Figure 7 (normalized training time vs rank x #tables)",
              env);

  const DatasetSpec spec = KaggleSpec().Scaled(env.scale_div);
  TrainConfig tc;
  tc.iterations = std::max<int64_t>(30, env.train_iters / 4);
  tc.batch_size = env.batch_size;
  tc.lr = 0.1f;
  tc.eval_batches = 0;  // timing only
  tc.log_every = 0;

  SweepModelConfig base;
  base.spec = spec;
  base.num_tt_tables = 0;
  base.dlrm = BenchDlrmConfig(env);
  const SweepRunResult rb = RunSweep(base, tc, 99);
  std::printf("baseline: %.3f ms/iter (paper: 12.14 ms/iter on V100, "
              "absolute values not comparable)\n\n",
              rb.ms_per_iter);

  const std::vector<int64_t> ranks = {8, 16, 32, 64};
  std::printf("normalized training time (baseline = 1.00):\n%-10s", "TT-Emb.");
  for (int64_t r : ranks) std::printf(" rank=%-7lld", static_cast<long long>(r));
  std::printf("  emb reduction @r32\n");
  for (int k : {3, 5, 7}) {
    std::printf("%-10d", k);
    double red32 = 0.0;
    for (int64_t rank : ranks) {
      SweepModelConfig cfg = base;
      cfg.num_tt_tables = k;
      cfg.tt_rank = rank;
      const SweepRunResult r = RunSweep(cfg, tc, 99);
      std::printf(" %-12.2f", r.ms_per_iter / rb.ms_per_iter);
      if (rank == 32) {
        red32 = static_cast<double>(rb.embedding_bytes) /
                static_cast<double>(r.embedding_bytes);
      }
    }
    std::printf("  %.1fx\n", red32);
  }
  std::printf(
      "\nExpected shape (paper Fig 7): overhead grows with rank and with "
      "#tables compressed; at the optimal rank the overhead is ~10-15%%.\n");
  return 0;
}
