// Figure 1: the TT-Rec design space — model accuracy vs embedding memory
// across TT rank, embedding dimension, and number of compressed tables,
// with the Pareto-optimal points marked. Also places the hashing-trick and
// low-rank baselines (related work, §7) on the same plane.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/hashed_embedding.h"
#include "baselines/lowrank_embedding.h"
#include "dlrm/embedding_bag.h"
#include "harness.h"

using namespace ttrec;
using namespace ttrec::bench;

namespace {

struct Point {
  std::string label;
  int64_t bytes;
  double accuracy;
  double ms_per_iter;
};

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("fig1_design_space",
              "Paper Figure 1 (accuracy vs model size across rank / dim / "
              "#compressed tables; Pareto frontier)",
              env);

  const DatasetSpec spec = KaggleSpec().Scaled(env.scale_div);
  TrainConfig tc;
  tc.iterations = env.train_iters;
  tc.batch_size = env.batch_size;
  tc.lr = 0.1f;
  tc.eval_batches = 3;
  tc.eval_batch_size = 512;
  tc.log_every = 0;

  std::vector<Point> points;

  // Baseline (uncompressed).
  {
    SweepModelConfig cfg;
    cfg.spec = spec;
    cfg.num_tt_tables = 0;
    cfg.dlrm = BenchDlrmConfig(env, 16);
    cfg.emb_dim = 16;
    const SweepRunResult r = RunSweep(cfg, tc, 42);
    points.push_back({"baseline dim=16", r.embedding_bytes,
                      r.eval.accuracy, r.ms_per_iter});
  }

  const std::vector<int64_t> ranks = env.full
                                         ? std::vector<int64_t>{8, 16, 32, 64}
                                         : std::vector<int64_t>{4, 16, 48};
  const std::vector<int64_t> dims = env.full ? std::vector<int64_t>{8, 16, 32}
                                             : std::vector<int64_t>{8, 16};
  const std::vector<int> table_counts = {3, 7};

  for (int64_t dim : dims) {
    for (int64_t rank : ranks) {
      for (int k : table_counts) {
        SweepModelConfig cfg;
        cfg.spec = spec;
        cfg.emb_dim = dim;
        cfg.num_tt_tables = k;
        cfg.tt_rank = rank;
        cfg.dlrm = BenchDlrmConfig(env, dim);
        const SweepRunResult r = RunSweep(cfg, tc, 42);
        char label[96];
        std::snprintf(label, sizeof(label),
                      "tt rank=%lld dim=%lld tables=%d",
                      static_cast<long long>(rank),
                      static_cast<long long>(dim), k);
        points.push_back({label, r.embedding_bytes, r.eval.accuracy,
                          r.ms_per_iter});
      }
    }
  }

  // Related-work baselines at comparable compression (hash buckets / low
  // rank sized to roughly match TT rank 16, 7 tables).
  {
    Rng rng(42);
    SyntheticCriteo data(BenchDataConfig(spec, 42));
    const std::vector<int> top = spec.LargestTables(7);
    std::vector<bool> is_comp(static_cast<size_t>(spec.num_tables()), false);
    for (int t : top) is_comp[static_cast<size_t>(t)] = true;
    for (const std::string kind : {"hashed", "lowrank"}) {
      Rng mrng(42);
      std::vector<std::unique_ptr<EmbeddingOp>> tables;
      for (int t = 0; t < spec.num_tables(); ++t) {
        const int64_t rows = spec.table_rows[static_cast<size_t>(t)];
        if (!is_comp[static_cast<size_t>(t)]) {
          tables.push_back(std::make_unique<DenseEmbeddingBag>(
              rows, 16, PoolingMode::kSum,
              DenseEmbeddingInit::UniformScaled(), mrng));
        } else if (kind == "hashed") {
          tables.push_back(std::make_unique<HashedEmbeddingBag>(
              rows, std::max<int64_t>(1, rows / 64), 16, PoolingMode::kSum,
              mrng));
        } else {
          tables.push_back(std::make_unique<LowRankEmbeddingBag>(
              rows, 16, 4, PoolingMode::kSum, mrng));
        }
      }
      DlrmModel model(BenchDlrmConfig(env, 16), std::move(tables), mrng);
      SyntheticCriteo d2(BenchDataConfig(spec, 42));
      const TrainResult r = TrainDlrm(model, d2, tc);
      points.push_back({kind + " (7 tables)", model.EmbeddingMemoryBytes(),
                        r.final_eval.accuracy, r.MsPerIteration()});
    }
  }

  // Pareto frontier: maximal accuracy among points with <= bytes.
  std::vector<size_t> order(points.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return points[a].bytes < points[b].bytes;
  });
  std::vector<bool> pareto(points.size(), false);
  double best = -1.0;
  for (size_t i : order) {
    if (points[i].accuracy > best) {
      best = points[i].accuracy;
      pareto[i] = true;
    }
  }

  std::printf("%-30s %14s %10s %10s %7s\n", "config", "emb bytes",
              "accuracy%", "ms/iter", "pareto");
  for (size_t i : order) {
    std::printf("%-30s %14lld %10.3f %10.2f %7s\n", points[i].label.c_str(),
                static_cast<long long>(points[i].bytes),
                100.0 * points[i].accuracy, points[i].ms_per_iter,
                pareto[i] ? "*" : "");
  }
  std::printf(
      "\nExpected shape (paper Fig 1): TT points dominate the low-memory "
      "region; accuracy rises with rank/dim and saturates; Pareto frontier "
      "spans orders of magnitude in memory at near-baseline accuracy.\n");
  return 0;
}
