// Post-training compression comparison (extends the paper's related-work
// discussion, §7): train the uncompressed DLRM, then swap its largest
// trained table for (a) a TT-SVD decomposition across ranks, (b) a
// truncated-SVD low-rank factorization, (c) an int8/int4 quantized copy,
// and re-evaluate on identical held-out batches.
//
// The contrast this quantifies: quantization caps at < 8x compression;
// low-rank / TT-SVD reach much further but their error depends on how well
// a *trained* table matches the imposed structure. (TT-Rec itself trains
// cores directly and avoids the decomposition-error question entirely —
// Fig 6.)
#include <cstdio>
#include <functional>
#include <memory>

#include "baselines/lowrank_embedding.h"
#include "baselines/quantized_embedding.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "harness.h"
#include "tensor/svd.h"
#include "tt/tt_decompose.h"

using namespace ttrec;
using namespace ttrec::bench;

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("ablation_compression",
              "Post-training table compression: TT-SVD vs truncated SVD vs "
              "quantization (related work, paper §7)",
              env);

  const DatasetSpec spec = KaggleSpec().Scaled(env.scale_div);
  const std::vector<int> targets = spec.LargestTables(7);

  // 1. Train the dense baseline.
  Rng rng(404);
  SyntheticCriteo data(BenchDataConfig(spec, 404));
  DlrmConfig dlrm = BenchDlrmConfig(env);
  auto model = MakeBaselineDlrm(dlrm, spec, rng);
  TrainConfig tc;
  tc.iterations = env.train_iters;
  tc.batch_size = env.batch_size;
  tc.lr = 0.1f;
  tc.eval_batches = 4;
  tc.eval_batch_size = 512;
  tc.log_every = 0;
  (void)TrainDlrm(*model, data, tc);
  const std::vector<MiniBatch> eval = MakeEvalSet(data, tc);
  const EvalMetrics base = model->Evaluate(eval);

  // 2. Snapshot the 7 largest trained tables (the paper's TT-Emb. of 7).
  std::vector<Tensor> trained;
  int64_t dense_bytes = 0;
  for (int t : targets) {
    auto* dense = dynamic_cast<DenseEmbeddingBag*>(&model->table(t));
    TTREC_CHECK_INTERNAL(dense != nullptr, "baseline table is dense");
    trained.push_back(dense->table());
    dense_bytes += trained.back().numel() * 4;
  }

  std::printf("trained baseline: accuracy %.3f%%; compressing the 7 largest "
              "tables (%s total)\n\n",
              100.0 * base.accuracy, FormatBytes(dense_bytes).c_str());
  std::printf("%-22s %14s %10s %12s %12s\n", "method", "7-table bytes",
              "ratio", "accuracy%", "delta acc%");
  std::printf("%-22s %14lld %9.1fx %12.3f %12s\n", "fp32 (original)",
              static_cast<long long>(dense_bytes), 1.0,
              100.0 * base.accuracy, "--");

  // Builds a compressed op for trained table i; returns nullptr to skip.
  using Builder = std::function<std::unique_ptr<EmbeddingOp>(const Tensor&)>;
  auto report = [&](const char* name, const Builder& build) {
    int64_t bytes = 0;
    for (size_t i = 0; i < targets.size(); ++i) {
      std::unique_ptr<EmbeddingOp> op = build(trained[i]);
      bytes += op->MemoryBytes();
      model->ReplaceTable(targets[i], std::move(op));
    }
    const EvalMetrics m = model->Evaluate(eval);
    std::printf("%-22s %14lld %9.1fx %12.3f %+12.3f\n", name,
                static_cast<long long>(bytes),
                static_cast<double>(dense_bytes) / static_cast<double>(bytes),
                100.0 * m.accuracy, 100.0 * (m.accuracy - base.accuracy));
    for (size_t i = 0; i < targets.size(); ++i) {
      model->ReplaceTable(targets[i],
                          std::make_unique<DenseEmbeddingBag>(
                              Tensor(trained[i]), PoolingMode::kSum));
    }
  };

  // Quantization (inference-only related work).
  for (int bits : {8, 4}) {
    char name[32];
    std::snprintf(name, sizeof(name), "int%d quantized", bits);
    report(name, [bits](const Tensor& t) {
      return std::make_unique<QuantizedEmbeddingBag>(t, bits,
                                                     PoolingMode::kSum);
    });
  }

  // Truncated-SVD low rank.
  for (int64_t r : {8, 4, 2}) {
    char name[32];
    std::snprintf(name, sizeof(name), "svd rank=%lld",
                  static_cast<long long>(r));
    report(name, [r](const Tensor& t) -> std::unique_ptr<EmbeddingOp> {
      SvdResult svd = TruncatedSvd(t, r);
      Tensor a = svd.u;
      Tensor b = svd.vt;  // fold singular values into B
      const int64_t rr = b.dim(0);
      for (int64_t i = 0; i < rr; ++i) {
        float* row = b.data() + i * b.dim(1);
        for (int64_t j = 0; j < b.dim(1); ++j) {
          row[j] *= svd.s[static_cast<size_t>(i)];
        }
      }
      return std::make_unique<LowRankEmbeddingBag>(std::move(a), std::move(b),
                                                   PoolingMode::kSum);
    });
  }

  // TT-SVD across ranks.
  const int64_t dim = dlrm.emb_dim;
  for (int64_t r : {64, 32, 16, 8}) {
    double mean_err = 0.0;
    char name[48];
    Builder build = [&mean_err, r, dim](const Tensor& t)
        -> std::unique_ptr<EmbeddingOp> {
      const TtShape shape = MakeTtShape(t.dim(0), dim, 3, r);
      TtCores cores = TtDecompose(t, shape);
      mean_err += TtReconstructionError(t, cores) / 7.0;
      TtEmbeddingConfig cfg;
      cfg.shape = cores.shape();
      return std::make_unique<TtEmbeddingAdapter>(cfg, std::move(cores));
    };
    // Name is printed after building, so stage manually.
    int64_t bytes = 0;
    for (size_t i = 0; i < targets.size(); ++i) {
      std::unique_ptr<EmbeddingOp> op = build(trained[i]);
      bytes += op->MemoryBytes();
      model->ReplaceTable(targets[i], std::move(op));
    }
    const EvalMetrics m = model->Evaluate(eval);
    std::snprintf(name, sizeof(name), "tt-svd rank=%lld (e=%.2f)",
                  static_cast<long long>(r), mean_err);
    std::printf("%-22s %14lld %9.1fx %12.3f %+12.3f\n", name,
                static_cast<long long>(bytes),
                static_cast<double>(dense_bytes) / static_cast<double>(bytes),
                100.0 * m.accuracy, 100.0 * (m.accuracy - base.accuracy));
    for (size_t i = 0; i < targets.size(); ++i) {
      model->ReplaceTable(targets[i],
                          std::make_unique<DenseEmbeddingBag>(
                              Tensor(trained[i]), PoolingMode::kSum));
    }
  }

  std::printf(
      "\nExpected: quantization is accuracy-neutral but capped < 8x; "
      "SVD/TT-SVD reach 10-1000x with accuracy tracking reconstruction "
      "error. TT-Rec's from-scratch training (Fig 6) gets the high ratios "
      "WITHOUT paying decomposition error.\n");
  return 0;
}
