// Figure 9: stability of the set of most-frequently-accessed embedding rows
// over training for the three largest tables. Cumulative access counts are
// snapshotted every 3% of the run; the y-value is the fraction of the
// top-10k set that changed since the previous snapshot (log scale in the
// paper; raw fractions here).
#include <cstdio>
#include <vector>

#include "data/trace.h"
#include "harness.h"

using namespace ttrec;
using namespace ttrec::bench;

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("fig9_reuse",
              "Paper Figure 9 (churn of the top-k hot-row set over training, "
              "EMB1-3)",
              env);

  // Real paper-scale cardinalities: the tracker only stores touched rows.
  const DatasetSpec& spec = KaggleSpec();
  const std::vector<int> top3 = spec.LargestTables(3);
  const int64_t total_accesses = env.full ? 4000000 : 600000;
  const int64_t top_k = env.full ? 10000 : 1000;
  const int checkpoints = 33;  // every ~3% of the run
  const int64_t step = total_accesses / checkpoints;

  std::printf("top-k = %lld, accesses per table = %lld, snapshot every ~3%%\n\n",
              static_cast<long long>(top_k),
              static_cast<long long>(total_accesses));
  std::printf("%-10s", "progress%");
  for (size_t e = 0; e < top3.size(); ++e) std::printf(" %10s%zu", "EMB", e + 1);
  std::printf("\n");

  std::vector<TopKStabilityTracker> trackers;
  std::vector<ZipfSampler> zipfs;
  std::vector<IndexShuffle> shuffles;
  std::vector<Rng> rngs;
  for (size_t e = 0; e < top3.size(); ++e) {
    const int64_t rows = spec.table_rows[static_cast<size_t>(top3[e])];
    trackers.emplace_back(top_k);
    zipfs.emplace_back(rows, 1.15);
    shuffles.emplace_back(rows, 1000 + e);
    rngs.emplace_back(500 + e);
  }

  for (int cp = 1; cp <= checkpoints; ++cp) {
    std::printf("%-10d", cp * 100 / checkpoints);
    for (size_t e = 0; e < top3.size(); ++e) {
      for (int64_t i = 0; i < step; ++i) {
        trackers[e].Record(shuffles[e].Map(zipfs[e].Sample(rngs[e])));
      }
      std::printf(" %11.4f", trackers[e].SnapshotChurn());
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper Fig 9): churn starts near 1.0 and decays "
      "rapidly; the hot set stabilizes within the first fraction of the "
      "run, justifying the freeze-after-warm-up cache policy.\n");
  return 0;
}
