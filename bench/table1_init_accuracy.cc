// Table 1: accuracy of the *uncompressed* DLRM under different embedding
// weight-initialization distributions, alongside the closed-form KL
// divergence D(Uniform(-1/sqrt(n), 1/sqrt(n)) || candidate Gaussian).
//
// Paper finding to reproduce in shape: accuracy degrades monotonically with
// the KL divergence from the uniform init; N(0, 1/(3n)) is on par with
// uniform, wide Gaussians (N(0,1)) are worst.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "dlrm/embedding_bag.h"
#include "dlrm/trainer.h"
#include "harness.h"
#include "tensor/stats.h"

using namespace ttrec;
using namespace ttrec::bench;

namespace {

struct InitCase {
  std::string name;
  bool uniform;
  // Gaussian variance as a function of the table's row count.
  std::function<double(int64_t)> sigma2;
};

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("table1_init_accuracy",
              "Paper Table 1 (DLRM accuracy vs embedding init distribution)",
              env);

  const DatasetSpec spec = KaggleSpec().Scaled(env.scale_div);
  const DlrmConfig dlrm = BenchDlrmConfig(env);

  const std::vector<InitCase> cases = {
      {"uniform(-1/sqrt(n), 1/sqrt(n))", true, {}},
      {"N(0, 1)", false, [](int64_t) { return 1.0; }},
      {"N(0, 1/2)", false, [](int64_t) { return 0.5; }},
      {"N(0, 1/8)", false, [](int64_t) { return 0.125; }},
      {"N(0, 1/3n)", false,
       [](int64_t n) { return 1.0 / (3.0 * static_cast<double>(n)); }},
      {"N(0, 1/9n^2)", false,
       [](int64_t n) {
         return 1.0 / (9.0 * static_cast<double>(n) * static_cast<double>(n));
       }},
  };

  TrainConfig tc;
  tc.iterations = env.train_iters;
  tc.batch_size = env.batch_size;
  tc.lr = 0.1f;
  tc.eval_batches = 4;
  tc.eval_batch_size = 512;
  tc.log_every = 0;

  std::printf("%-32s %14s %10s %10s %8s\n", "distribution", "KL(U||Q)",
              "accuracy%", "bce_loss", "auc");
  for (const InitCase& c : cases) {
    Rng rng(1234);
    SyntheticCriteo data(BenchDataConfig(spec, 1234));
    std::vector<std::unique_ptr<EmbeddingOp>> tables;
    // KL reported for the largest table's n (representative; the paper's
    // Table 1 quotes a single n as well).
    const int64_t n_ref = spec.table_rows[static_cast<size_t>(
        spec.LargestTables(1)[0])];
    double kl = 0.0;
    for (int64_t rows : spec.table_rows) {
      DenseEmbeddingInit init =
          c.uniform ? DenseEmbeddingInit::UniformScaled()
                    : DenseEmbeddingInit::Gaussian(c.sigma2(rows));
      tables.push_back(std::make_unique<DenseEmbeddingBag>(
          rows, dlrm.emb_dim, PoolingMode::kSum, init, rng));
    }
    if (!c.uniform) {
      const double a = 1.0 / std::sqrt(static_cast<double>(n_ref));
      kl = KlUniformVsGaussian(-a, a, 0.0, c.sigma2(n_ref));
    }
    DlrmModel model(dlrm, std::move(tables), rng);
    const TrainResult r = TrainDlrm(model, data, tc);
    std::printf("%-32s %14.4f %10.3f %10.4f %8.4f\n", c.name.c_str(), kl,
                100.0 * r.final_eval.accuracy, r.final_eval.loss,
                r.final_eval.auc);
  }
  std::printf(
      "\nExpected shape (paper Table 1): accuracy drops as KL grows;\n"
      "N(0,1/3n) ~ uniform; N(0,1) worst.\n");
  return 0;
}
