// Figure 12: cached TT-Rec kernel time vs cache hit rate, against the
// PyTorch EmbeddingBag baseline. Traces with controlled hit rates drive a
// pre-populated cache; the paper's crossover — cached TT-Rec beats the
// dense baseline once the hit rate reaches ~90% — should reproduce.
#include <cstdio>
#include <vector>

#include "cache/cached_tt_embedding.h"
#include "data/trace.h"
#include "dlrm/embedding_bag.h"
#include "harness.h"

using namespace ttrec;
using namespace ttrec::bench;

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeader("fig12_hitrate",
              "Paper Figure 12 (cached TT-Rec kernel vs EmbeddingBag across "
              "cache hit rates)",
              env);

  // The dense table must not fit in the CPU's last-level cache, or the
  // baseline's gathers are unrealistically cheap compared to the paper's
  // HBM-resident tables: 8M rows x 16 floats = 512 MB >> typical LLC.
  const int64_t rows = env.full ? 20000000 : 8000000;
  const int64_t dim = 16;
  const int64_t rank = 32;
  const int64_t batch = 1024;
  const int64_t cache_rows = rows / 1000;
  const int reps = 9;

  Rng rng(55);
  CachedTtConfig ccfg;
  ccfg.tt.shape = MakeTtShape(rows, dim, 3, rank);
  ccfg.cache_capacity = cache_rows;

  // The row set every per-point operator will cache (scattered ids).
  std::vector<int64_t> cached_rows(static_cast<size_t>(cache_rows));
  for (int64_t i = 0; i < cache_rows; ++i) {
    cached_rows[static_cast<size_t>(i)] = i * 7 + 1;
  }

  DenseEmbeddingBag dense(rows, dim, PoolingMode::kSum,
                          DenseEmbeddingInit::UniformScaled(), rng);

  std::vector<float> out(static_cast<size_t>(batch * dim));
  std::vector<float> grad(out.size(), 1.0f);

  // Baseline timing (hit-rate independent). Every rep uses a fresh trace so
  // the dense gathers actually pay DRAM latency instead of re-reading rows
  // the previous rep pulled into the LLC.
  std::vector<CsrBatch> base_traces;
  for (int r = 0; r < reps; ++r) {
    base_traces.push_back(CsrBatch::FromIndices(
        ControlledHitRateTrace(rows, cached_rows, 0.5, batch, rng)));
  }
  dense.Forward(base_traces[0], out.data());
  WallTimer dt;
  for (int r = 0; r < reps; ++r) {
    dense.Forward(base_traces[static_cast<size_t>(r)], out.data());
    dense.Backward(base_traces[static_cast<size_t>(r)], grad.data());
    dense.ApplySgd(0.01f);
  }
  const double dense_us = dt.Seconds() * 1e6 / (reps * batch);
  std::printf("EmbeddingBag baseline: %.3f us/lookup (fwd+bwd)\n\n", dense_us);

  std::printf("%-10s %14s %14s %12s %10s\n", "hit rate", "us/lookup",
              "vs EmbBag", "meas. hits", "winner");
  for (double hr : {0.0, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    // Fresh operator per point so hit statistics are clean.
    Rng prng(77);
    CachedTtConfig cfg = ccfg;
    cfg.warmup_iterations = 1;
    cfg.refresh_interval = 1;
    CachedTtEmbeddingBag op(cfg, TtInit::kSampledGaussian, prng);
    // Warm-up forward over exactly the cached row set -> cache holds it.
    CsrBatch seed = CsrBatch::FromIndices(cached_rows);
    std::vector<float> tmp(static_cast<size_t>(seed.num_bags() * dim));
    op.Forward(seed, tmp.data());  // iteration 0: counts rows
    op.Forward(seed, tmp.data());  // iteration 1 == warmup end: refresh
    op.ResetStats();

    std::vector<CsrBatch> traces;
    for (int r = 0; r < reps; ++r) {
      traces.push_back(CsrBatch::FromIndices(
          ControlledHitRateTrace(rows, cached_rows, hr, batch, prng)));
    }
    op.Forward(traces[0], out.data());  // warm
    op.ResetStats();
    WallTimer t;
    for (int r = 0; r < reps; ++r) {
      op.Forward(traces[static_cast<size_t>(r)], out.data());
      op.Backward(traces[static_cast<size_t>(r)], grad.data());
      op.ApplySgd(0.01f);
    }
    const double us = t.Seconds() * 1e6 / (reps * batch);
    std::printf("%-10.2f %14.3f %13.2fx %11.3f %10s\n", hr, us,
                us / dense_us, op.HitRate(),
                us < dense_us ? "TT-Rec" : "EmbBag");
  }
  std::printf(
      "\nExpected shape (paper Fig 12): cached TT-Rec time falls as the hit "
      "rate rises and crosses below EmbeddingBag around ~90%% hits.\n");
  return 0;
}
