// Shared infrastructure for the per-table/per-figure bench binaries.
//
// Every bench prints a self-describing header, the paper artifact it
// regenerates, and CSV-ish rows matching the paper's axes. Scale is
// controlled by TTREC_FULL=1 (closer-to-paper sizes; slower) vs the default
// laptop/single-core scale; TTREC_SCALE_DIV overrides the table-row divisor
// directly.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/criteo_synth.h"
#include "data/table_specs.h"
#include "dlrm/model.h"
#include "dlrm/trainer.h"
#include "tt/tt_init.h"

namespace ttrec::bench {

/// Scale knobs resolved from the environment.
struct BenchEnv {
  bool full = false;        // TTREC_FULL=1
  int64_t scale_div = 512;  // divisor applied to real table cardinalities
  int64_t train_iters = 200;
  int64_t batch_size = 64;

  static BenchEnv FromEnvironment();
};

/// Prints the standard bench banner.
void PrintHeader(const std::string& bench_name, const std::string& artifact,
                 const BenchEnv& env);

/// Wall-clock helper.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Human-readable byte size ("18.4 MB").
std::string FormatBytes(int64_t bytes);

/// Which embedding implementation each DLRM table uses in a sweep.
enum class TableKind : uint8_t { kDense, kTt, kCachedTt };

struct SweepModelConfig {
  DatasetSpec spec;              // already scaled
  int64_t emb_dim = 16;
  int num_tt_tables = 0;         // the paper's "TT-Emb. of 3/5/7"
  int64_t tt_rank = 32;
  TtInit tt_init = TtInit::kSampledGaussian;
  bool use_cache = false;
  int64_t cache_capacity = 0;    // rows per cached table; 0 = 0.01% of table
  int64_t warmup_iterations = 20;
  int64_t refresh_interval = 10;
  DlrmConfig dlrm;               // MLP dims etc.
};

/// Builds a DLRM whose `num_tt_tables` largest tables are TT-compressed
/// (optionally cached) and the rest dense — the paper's experimental knob.
std::unique_ptr<DlrmModel> BuildSweepModel(const SweepModelConfig& cfg,
                                           Rng& rng);

/// Total embedding bytes if every table were dense (the baseline bar).
int64_t DenseEmbeddingBytes(const DatasetSpec& spec, int64_t emb_dim);

/// One train-and-evaluate run; shared by the accuracy/time sweeps.
struct SweepRunResult {
  EvalMetrics eval;
  double ms_per_iter = 0.0;
  int64_t embedding_bytes = 0;
};
SweepRunResult RunSweep(const SweepModelConfig& cfg, const TrainConfig& tc,
                        uint64_t seed);

/// Small DLRM tower config used across benches (kept modest so single-core
/// sweeps finish; TTREC_FULL widens it).
DlrmConfig BenchDlrmConfig(const BenchEnv& env, int64_t emb_dim = 16);

/// Synthetic data stream over `spec` with bench-standard knobs.
SyntheticCriteoConfig BenchDataConfig(const DatasetSpec& spec, uint64_t seed,
                                      int64_t pooling_factor = 1);

}  // namespace ttrec::bench
